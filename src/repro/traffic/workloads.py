"""Workload mixes for the traffic simulator.

Everything here is deterministic given the seed, produces plain
``(s, t)`` pair lists and edge-index fault lists (the shapes
``route_many`` consumes), and respects a fault *budget*: the paper's
guarantees hold for at most ``f`` simultaneous faults, so timelines
never let the live fault set exceed it.

Three generators cover the interesting traffic shapes:

* :func:`uniform_pairs` — all-to-all background traffic;
* :func:`hotspot_pairs` — a few hot destinations take most messages
  (the skew that makes shared-state caching pay off);
* :func:`churn_timeline` — a sequence of epochs whose fault set
  evolves by random link failures and repairs (failure churn and
  recovery), each epoch carrying its own message batch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence


def uniform_pairs(
    n: int, count: int, rng: random.Random
) -> list[tuple[int, int]]:
    """``count`` uniformly random ordered (s, t) pairs with s != t."""
    if n < 2:
        raise ValueError("need at least two vertices for message pairs")
    out = []
    for _ in range(count):
        s = rng.randrange(n)
        t = rng.randrange(n - 1)
        if t >= s:
            t += 1
        out.append((s, t))
    return out


def hotspot_pairs(
    n: int,
    count: int,
    rng: random.Random,
    hotspots: int = 4,
    bias: float = 0.8,
) -> list[tuple[int, int]]:
    """Skewed traffic: with probability ``bias`` the destination is one
    of ``hotspots`` fixed hot vertices (sources stay uniform).

    Hot destinations concentrate decode work on a few home clusters —
    the workload where the packed engine's shared partition caches and
    the serving layer's hot-key replication earn their keep.
    """
    if n < 2:
        raise ValueError("need at least two vertices for message pairs")
    hotspots = max(1, min(hotspots, n))
    hot = rng.sample(range(n), hotspots)
    out = []
    for _ in range(count):
        s = rng.randrange(n)
        if rng.random() < bias:
            t = hot[rng.randrange(len(hot))]
            if t == s:
                t = hot[(hot.index(t) + 1) % len(hot)] if len(hot) > 1 else (s + 1) % n
        else:
            t = rng.randrange(n - 1)
            if t >= s:
                t += 1
        if t == s:
            t = (s + 1) % n
        out.append((s, t))
    return out


def fault_set_pool(
    m: int, sets: int, size: int, rng: random.Random
) -> list[list[int]]:
    """``sets`` distinct-ish fault sets of ``size`` edges each (sorted,
    unique edge indices — the canonical presentation)."""
    size = min(size, m)
    return [sorted(rng.sample(range(m), size)) for _ in range(max(1, sets))]


@dataclass
class TrafficEpoch:
    """One simulation step: the live fault set and its message batch.

    ``events`` records what changed entering this epoch, as
    ``("fail" | "repair", edge_index)`` tuples; ``faults`` is the fault
    set in force while this epoch's ``pairs`` are routed.
    """

    index: int
    faults: list[int]
    pairs: list[tuple[int, int]] = field(default_factory=list)
    events: list[tuple[str, int]] = field(default_factory=list)


def churn_timeline(
    n: int,
    m: int,
    epochs: int,
    budget: int,
    rng: random.Random,
    messages_per_epoch: int = 64,
    fail_prob: float = 0.6,
    repair_prob: float = 0.3,
    pair_gen=uniform_pairs,
    edge_pool: Optional[Sequence[int]] = None,
) -> list[TrafficEpoch]:
    """A fail/repair churn timeline with per-epoch message batches.

    Entering each epoch, every live fault independently repairs with
    probability ``repair_prob``, then (budget permitting) a new edge
    fails with probability ``fail_prob`` — so the fault set drifts
    through fail/repair interleavings without ever exceeding
    ``budget`` (the ``f`` the labels were built for).  ``edge_pool``
    restricts which edges may fail (default: all).  ``pair_gen`` is
    the message-mix generator (:func:`uniform_pairs` or
    :func:`hotspot_pairs`-style, called as ``pair_gen(n, count, rng)``).
    """
    if budget < 0:
        raise ValueError("fault budget must be >= 0")
    pool = list(range(m)) if edge_pool is None else list(edge_pool)
    live: list[int] = []
    out: list[TrafficEpoch] = []
    for e in range(epochs):
        events: list[tuple[str, int]] = []
        for ei in list(live):
            if rng.random() < repair_prob:
                live.remove(ei)
                events.append(("repair", ei))
        if pool and len(live) < budget and rng.random() < fail_prob:
            candidates = [ei for ei in pool if ei not in live]
            if candidates:
                ei = candidates[rng.randrange(len(candidates))]
                live.append(ei)
                events.append(("fail", ei))
        out.append(
            TrafficEpoch(
                index=e,
                faults=list(live),
                pairs=pair_gen(n, messages_per_epoch, rng),
                events=events,
            )
        )
    return out
