"""Tree substrates: union-find, heavy-light decomposition, Thorup-Zwick
tree routing (Fact 5.1 / Claim 5.6), and tree covers (Definition 4.1)."""

from repro.trees.union_find import UnionFind
from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.tree_routing import TreeRoutingScheme
from repro.trees.tree_cover import CoverTree, TreeCover, sparse_cover

__all__ = [
    "UnionFind",
    "HeavyLightDecomposition",
    "TreeRoutingScheme",
    "CoverTree",
    "TreeCover",
    "sparse_cover",
]
