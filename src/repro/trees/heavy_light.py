"""Heavy-light decomposition of rooted trees.

Used by the tree-routing scheme of Fact 5.1 ([TZ01]): every root-to-leaf
path contains at most ``log2 n`` light edges, so a routing label that
lists only the light edges of the root-to-target path is
O(log^2 n) bits.
"""

from __future__ import annotations

from repro.graph.spanning_tree import RootedTree


class HeavyLightDecomposition:
    """Subtree sizes, heavy children and light-depths of a rooted tree."""

    def __init__(self, tree: RootedTree):
        self.tree = tree
        n = tree.graph.n
        self.size = [0] * n
        for v in tree.post_order():
            self.size[v] = 1 + sum(self.size[c] for c in tree.children[v])
        #: heavy child of each vertex (-1 for leaves): the child with the
        #: largest subtree, ties broken towards the smaller vertex id.
        self.heavy_child = [-1] * n
        for v in tree.vertices:
            best = -1
            best_size = 0
            for c in tree.children[v]:
                if self.size[c] > best_size:
                    best, best_size = c, self.size[c]
            self.heavy_child[v] = best
        #: number of light edges on the root-to-v path.
        self.light_depth = [0] * n
        for v in tree.vertices:
            p = tree.parent[v]
            if p < 0:
                self.light_depth[v] = 0
            else:
                extra = 0 if self.heavy_child[p] == v else 1
                self.light_depth[v] = self.light_depth[p] + extra

    def is_heavy_edge_to(self, child: int) -> bool:
        """True iff the edge (parent(child), child) is heavy."""
        p = self.tree.parent[child]
        return p >= 0 and self.heavy_child[p] == child

    def light_edges_to(self, v: int) -> list[tuple[int, int]]:
        """The light edges (parent, child) on the root-to-v path, top-down."""
        out = []
        x = v
        while self.tree.parent[x] >= 0:
            p = self.tree.parent[x]
            if self.heavy_child[p] != x:
                out.append((p, x))
            x = p
        out.reverse()
        return out

    def max_light_depth(self) -> int:
        vs = self.tree.vertices
        return max((self.light_depth[v] for v in vs), default=0)
