"""Heavy-light decomposition of rooted trees.

Used by the tree-routing scheme of Fact 5.1 ([TZ01]): every root-to-leaf
path contains at most ``log2 n`` light edges, so a routing label that
lists only the light edges of the root-to-target path is
O(log^2 n) bits.

The decomposition is computed with the per-depth-layer array kernels of
:mod:`repro.graph.csr` (subtree sizes bottom-up, light-depths top-down,
heavy children by one grouped sort) instead of per-vertex Python loops;
the exposed ``size``/``heavy_child``/``light_depth`` lists are lazy
views over the numpy results (:meth:`arrays`), materialized only if a
caller actually indexes them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.spanning_tree import RootedTree


class HeavyLightDecomposition:
    """Subtree sizes, heavy children and light-depths of a rooted tree."""

    def __init__(self, tree: RootedTree):
        self.tree = tree
        n = tree.graph.n
        arr = tree.arrays()
        #: heavy child of each vertex (-1 for leaves): the child with the
        #: largest subtree, ties broken towards the smaller vertex id.
        heavy = np.full(n, -1, dtype=np.int64)
        # Non-root preorder vertices are exactly the child endpoints
        # (trees inside a Forest share full-n parent/depth arrays, so a
        # ``depth > 0`` scan would sweep in foreign components).
        child = np.sort(arr.order[1:])
        if child.size:
            par = arr.parent[child]
            # Group children by parent, largest subtree first (ties by
            # smaller id); the first row of each group is the heavy child.
            order = np.lexsort((child, -arr.size[child], par))
            sp = par[order]
            first = np.flatnonzero(np.r_[True, sp[1:] != sp[:-1]])
            heavy[sp[first]] = child[order][first]
        self._heavy_np = heavy
        #: number of light edges on the root-to-v path.
        light = np.zeros(n, dtype=np.int64)
        for vs in arr.layers[1:]:
            ps = arr.parent[vs]
            light[vs] = light[ps] + (heavy[ps] != vs)
        self._light_np = light
        self._size_list: Optional[list[int]] = None
        self._heavy_list: Optional[list[int]] = None
        self._light_list: Optional[list[int]] = None

    # -- numpy accessors (the routing kernels read these) --------------
    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(heavy_child, light_depth)`` as int64 arrays."""
        return self._heavy_np, self._light_np

    # -- lazy list compatibility views ---------------------------------
    @property
    def size(self) -> list[int]:
        if self._size_list is None:
            self._size_list = self.tree.arrays().size.tolist()
        return self._size_list

    @property
    def heavy_child(self) -> list[int]:
        if self._heavy_list is None:
            self._heavy_list = self._heavy_np.tolist()
        return self._heavy_list

    @property
    def light_depth(self) -> list[int]:
        if self._light_list is None:
            self._light_list = self._light_np.tolist()
        return self._light_list

    def is_heavy_edge_to(self, child: int) -> bool:
        """True iff the edge (parent(child), child) is heavy."""
        p = int(self.tree.arrays().parent[child])
        return p >= 0 and int(self._heavy_np[p]) == child

    def light_edges_to(self, v: int) -> list[tuple[int, int]]:
        """The light edges (parent, child) on the root-to-v path, top-down."""
        parent = self.tree.arrays().parent
        heavy = self._heavy_np
        out = []
        x = v
        while x != self.tree.root and parent[x] >= 0:
            p = int(parent[x])
            if int(heavy[p]) != x:
                out.append((p, x))
            x = p
        out.reverse()
        return out

    def max_light_depth(self) -> int:
        order = self.tree.arrays().order
        if order.size == 0:
            return 0
        return int(self._light_np[order].max())
