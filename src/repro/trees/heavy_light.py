"""Heavy-light decomposition of rooted trees.

Used by the tree-routing scheme of Fact 5.1 ([TZ01]): every root-to-leaf
path contains at most ``log2 n`` light edges, so a routing label that
lists only the light edges of the root-to-target path is
O(log^2 n) bits.

The decomposition is computed with the per-depth-layer array kernels of
:mod:`repro.graph.csr` (subtree sizes bottom-up, light-depths top-down,
heavy children by one grouped sort) instead of per-vertex Python loops;
the exposed attributes keep their original list form.
"""

from __future__ import annotations

import numpy as np

from repro.graph.spanning_tree import RootedTree


class HeavyLightDecomposition:
    """Subtree sizes, heavy children and light-depths of a rooted tree."""

    def __init__(self, tree: RootedTree):
        self.tree = tree
        n = tree.graph.n
        arr = tree.arrays()
        self.size = arr.size.tolist()
        #: heavy child of each vertex (-1 for leaves): the child with the
        #: largest subtree, ties broken towards the smaller vertex id.
        heavy = np.full(n, -1, dtype=np.int64)
        child = np.flatnonzero(arr.depth > 0)
        if child.size:
            par = arr.parent[child]
            # Group children by parent, largest subtree first (ties by
            # smaller id); the first row of each group is the heavy child.
            order = np.lexsort((child, -arr.size[child], par))
            sp = par[order]
            first = np.flatnonzero(np.r_[True, sp[1:] != sp[:-1]])
            heavy[sp[first]] = child[order][first]
        self.heavy_child = heavy.tolist()
        #: number of light edges on the root-to-v path.
        light = np.zeros(n, dtype=np.int64)
        for vs in arr.layers[1:]:
            ps = arr.parent[vs]
            light[vs] = light[ps] + (heavy[ps] != vs)
        self.light_depth = light.tolist()

    def is_heavy_edge_to(self, child: int) -> bool:
        """True iff the edge (parent(child), child) is heavy."""
        p = self.tree.parent[child]
        return p >= 0 and self.heavy_child[p] == child

    def light_edges_to(self, v: int) -> list[tuple[int, int]]:
        """The light edges (parent, child) on the root-to-v path, top-down."""
        out = []
        x = v
        while self.tree.parent[x] >= 0:
            p = self.tree.parent[x]
            if self.heavy_child[p] != x:
                out.append((p, x))
            x = p
        out.reverse()
        return out

    def max_light_depth(self) -> int:
        vs = self.tree.vertices
        return max((self.light_depth[v] for v in vs), default=0)
