"""Tree covers (Definition 4.1 / Proposition 4.2 [Pel00]).

A tree cover ``TC(G, w, rho, k)`` is a collection of clusters (each
carrying a shortest-path tree) such that

1. for every vertex ``v`` some cluster contains the ball ``B_rho(v)``;
2. cluster radii are O(k * rho);
3. every vertex lies in ``Õ(k * n^{1/k})`` clusters.

The construction is the Awerbuch-Peleg sparse-cover procedure, run in
rounds so that clusters created within a round are pairwise disjoint
(bounding the per-vertex overlap by the number of rounds):

* a *kernel* is grown from an uncovered ball by repeatedly merging all
  still-uncovered balls that intersect it, until one more expansion
  would exceed an ``n^{1/k}`` size growth;
* the final expansion becomes the output cluster; the centers whose
  balls were merged are *covered* (the cluster is their "home", the
  tree guaranteed to contain their ball);
* remaining centers whose balls merely touch the cluster are deferred
  to a later round.

When a component's eccentricity from its root is at most ``rho``, the
whole component is emitted as a single cluster (this is both an exact
special case of the procedure and the fast path for the top distance
scales, where every ball is the whole component).

The paper's radius constant is ``(2k-1) rho``; this round-based variant
guarantees ``(2k+1) rho`` in the worst case — the difference is absorbed
in the *measured* stretch reported by the benches (the distance
scheme's docstrings carry the adjusted constants).

Per-scale ball computations run through the batched truncated-SSSP
kernel of :mod:`repro.graph.csr` (``engine="csr"``, the default): all
balls of a component are computed by one segmented-min relaxation over
the arc arrays instead of one Python Dijkstra per center.  The
sequential heap implementation remains as ``engine="reference"`` and
produces identical covers (distances agree exactly; every derived set
is content-determined).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.graph import csr as csrk
from repro.graph.graph import Graph


@dataclass(frozen=True)
class CoverTree:
    """One cluster of a tree cover: center, members, and measured radius."""

    index: int
    center: int
    vertices: tuple[int, ...]
    radius: float


@dataclass
class TreeCover:
    """The clusters of one ``(rho, k)`` tree cover plus the home map."""

    rho: float
    k: int
    trees: list[CoverTree]
    home: dict[int, int]  # vertex -> index of the tree containing B_rho(v)

    def overlap_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for t in self.trees:
            for v in t.vertices:
                counts[v] = counts.get(v, 0) + 1
        return counts

    def max_overlap(self) -> int:
        counts = self.overlap_counts()
        return max(counts.values(), default=0)


def _ball(graph: Graph, source: int, radius: float, skip: set[int]) -> dict[int, float]:
    """Truncated Dijkstra: vertices within ``radius`` of ``source`` in
    ``G \\ skip`` (dict vertex -> distance).  Reference implementation."""
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for v, ei in graph.incident(u):
            if ei in skip:
                continue
            nd = d + graph.weight(ei)
            if nd <= radius and nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def _component_and_ecc(
    graph: Graph, root: int, skip: set[int]
) -> tuple[list[int], float]:
    """Component of ``root`` in G \\ skip and the eccentricity of root.

    Single-source and *unbounded*, so the heap Dijkstra is the right
    tool on both engines: the label-correcting SSSP kernel would run
    one all-arc round per shortest-path hop, which is O(n m) on
    high-diameter components.  The batched kernel is reserved for the
    radius-truncated all-centers ball computation.
    """
    dist = _ball(graph, root, math.inf, skip)
    return sorted(dist), max(dist.values(), default=0.0)


def sparse_cover(
    graph: Graph,
    rho: float,
    k: int,
    forbidden_edges: Iterable[int] = (),
    max_cluster_growth: Optional[float] = None,
    engine: str = "csr",
) -> TreeCover:
    """Build a ``(rho, k)`` tree cover of ``G \\ forbidden_edges``.

    ``max_cluster_growth`` overrides the ``n^{1/k}`` kernel growth bound
    (used by tests to force multi-round behaviour).  ``engine`` selects
    the batched CSR ball kernel (default) or the sequential reference.
    """
    if rho <= 0 or k < 1:
        raise ValueError("need rho > 0 and k >= 1")
    if engine not in ("csr", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    skip = set(forbidden_edges)
    use_csr = engine == "csr"
    skip_mask = csrk.forbidden_mask(graph.m, skip) if use_csr else None
    growth = (
        max_cluster_growth
        if max_cluster_growth is not None
        else max(graph.n, 2) ** (1.0 / k)
    )
    trees: list[CoverTree] = []
    home: dict[int, int] = {}
    assigned_component: set[int] = set()
    for root in graph.vertices():
        if root in assigned_component:
            continue
        comp, ecc = _component_and_ecc(graph, root, skip)
        assigned_component.update(comp)
        if ecc <= rho:
            # The whole component is a single ball: one cluster suffices.
            idx = len(trees)
            trees.append(
                CoverTree(index=idx, center=root, vertices=tuple(comp), radius=ecc)
            )
            for v in comp:
                home[v] = idx
            continue
        _cover_component(
            graph, comp, rho, growth, skip, use_csr, skip_mask, trees, home
        )
    return TreeCover(rho=rho, k=k, trees=trees, home=home)


def _cover_component(
    graph: Graph,
    comp: list[int],
    rho: float,
    growth: float,
    skip: set[int],
    use_csr: bool,
    skip_mask: Optional[np.ndarray],
    trees: list[CoverTree],
    home: dict[int, int],
) -> None:
    if use_csr:
        # Batched truncated SSSP gives every center's ball at once;
        # the kernel chunks sources (bounded memory) and falls back to
        # heap Dijkstra on hop-deep chunks (bounded rounds).
        ball_list = csrk.truncated_balls(
            graph.as_csr(), comp, radius=rho, forbidden=skip_mask
        )
        balls = dict(zip(comp, ball_list))
    else:
        balls = {v: _ball(graph, v, rho, skip) for v in comp}
    inv: dict[int, set[int]] = {v: set() for v in comp}
    for center, ball in balls.items():
        for w in ball:
            inv[w].add(center)
    remaining = set(comp)
    while remaining:
        blocked: set[int] = set()
        progressed = False
        for v in comp:
            if v not in remaining or v in blocked:
                continue
            progressed = True
            kernel = set(balls[v])
            while True:
                z_centers: set[int] = set()
                for w in kernel:
                    z_centers |= inv[w]
                z_centers &= remaining
                z_vertices: set[int] = set()
                for u in z_centers:
                    z_vertices |= balls[u].keys()
                if len(z_vertices) <= growth * len(kernel):
                    break
                kernel = z_vertices
            idx = len(trees)
            center_dist = _ball_within(graph, v, z_vertices, skip)
            radius = max(center_dist.values(), default=0.0)
            trees.append(
                CoverTree(
                    index=idx,
                    center=v,
                    vertices=tuple(sorted(z_vertices)),
                    radius=radius,
                )
            )
            for u in z_centers:
                home[u] = idx
            remaining -= z_centers
            for w in z_vertices:
                blocked |= inv[w] & remaining
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("sparse cover made no progress")


def _ball_within(
    graph: Graph, source: int, allowed: set[int], skip: set[int]
) -> dict[int, float]:
    """Dijkstra from ``source`` restricted to the ``allowed`` vertex set.

    Single-source and unbounded within the cluster — heap Dijkstra, see
    :func:`_component_and_ecc`.
    """
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for v, ei in graph.incident(u):
            if ei in skip or v not in allowed:
                continue
            nd = d + graph.weight(ei)
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
