"""Tree covers (Definition 4.1 / Proposition 4.2 [Pel00]).

A tree cover ``TC(G, w, rho, k)`` is a collection of clusters (each
carrying a shortest-path tree) such that

1. for every vertex ``v`` some cluster contains the ball ``B_rho(v)``;
2. cluster radii are O(k * rho);
3. every vertex lies in ``Õ(k * n^{1/k})`` clusters.

The construction is the Awerbuch-Peleg sparse-cover procedure, run in
rounds so that clusters created within a round are pairwise disjoint
(bounding the per-vertex overlap by the number of rounds):

* a *kernel* is grown from an uncovered ball by repeatedly merging all
  still-uncovered balls that intersect it, until one more expansion
  would exceed an ``n^{1/k}`` size growth;
* the final expansion becomes the output cluster; the centers whose
  balls were merged are *covered* (the cluster is their "home", the
  tree guaranteed to contain their ball);
* remaining centers whose balls merely touch the cluster are deferred
  to a later round.

When a component's eccentricity from its root is at most ``rho``, the
whole component is emitted as a single cluster (this is both an exact
special case of the procedure and the fast path for the top distance
scales, where every ball is the whole component).

The paper's radius constant is ``(2k-1) rho``; this round-based variant
guarantees ``(2k+1) rho`` in the worst case — the difference is absorbed
in the *measured* stretch reported by the benches (the distance
scheme's docstrings carry the adjusted constants).

Per-scale ball computations run through the batched truncated-SSSP
kernel of :mod:`repro.graph.csr` (``engine="csr"``, the default): all
balls of a component are computed by one segmented-min relaxation over
the arc arrays instead of one Python Dijkstra per center.  The
sequential heap implementation remains as ``engine="reference"`` and
produces identical covers (distances agree exactly; every derived set
is content-determined).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Optional

import numpy as np

from repro.graph import csr as csrk
from repro.graph.graph import Graph


class CoverTree:
    """One cluster of a tree cover: center, members, and measured radius.

    ``members`` is the canonical int64 array (ascending vertex ids as
    constructed); the classic ``vertices`` tuple is a lazy view for
    tests and reference callers.
    """

    __slots__ = ("index", "center", "members", "radius", "_vertices")

    def __init__(self, index: int, center: int, vertices, radius: float):
        self.index = index
        self.center = center
        self.members = np.asarray(vertices, dtype=np.int64)
        self.radius = radius
        self._vertices: Optional[tuple[int, ...]] = None

    @property
    def vertices(self) -> tuple[int, ...]:
        if self._vertices is None:
            self._vertices = tuple(self.members.tolist())
        return self._vertices

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CoverTree(index={self.index}, center={self.center}, "
            f"|members|={self.members.size}, radius={self.radius})"
        )


class TreeCover:
    """The clusters of one ``(rho, k)`` tree cover plus the home map.

    The home map (vertex -> index of the cluster containing
    ``B_rho(v)``) is stored as parallel sorted-by-vertex arrays with
    ``searchsorted`` lookup (:meth:`home_arrays`, :meth:`home_of`); the
    classic ``home`` dict is a lazy compatibility view.
    """

    __slots__ = ("rho", "k", "trees", "_home_v", "_home_i", "_home_dict")

    def __init__(self, rho: float, k: int, trees: list[CoverTree], home=None):
        self.rho = rho
        self.k = k
        self.trees = trees
        self._home_dict: Optional[dict[int, int]] = None
        if isinstance(home, tuple):
            hv, hi = home
            self._home_v = np.asarray(hv, dtype=np.int64)
            self._home_i = np.asarray(hi, dtype=np.int64)
        else:
            self._home_dict = dict(home) if home else {}
            items = sorted(self._home_dict.items())
            self._home_v = np.fromiter(
                (v for v, _ in items), dtype=np.int64, count=len(items)
            )
            self._home_i = np.fromiter(
                (j for _, j in items), dtype=np.int64, count=len(items)
            )

    def home_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(vertices, indices)`` sorted by vertex — the canonical map."""
        return self._home_v, self._home_i

    def home_of(self, v: int) -> Optional[int]:
        """Cluster index whose tree contains ``B_rho(v)`` (None if absent)."""
        pos = int(np.searchsorted(self._home_v, v))
        if pos < self._home_v.size and int(self._home_v[pos]) == v:
            return int(self._home_i[pos])
        return None

    @property
    def home(self) -> dict[int, int]:
        if self._home_dict is None:
            self._home_dict = dict(
                zip(self._home_v.tolist(), self._home_i.tolist())
            )
        return self._home_dict

    def overlap_counts(self) -> dict[int, int]:
        """Per-vertex cluster multiplicity (vertices in >= 1 cluster)."""
        if not self.trees:
            return {}
        members = np.concatenate([t.members for t in self.trees])
        counts = np.bincount(members)
        vs = np.flatnonzero(counts)
        return dict(zip(vs.tolist(), counts[vs].tolist()))

    def max_overlap(self) -> int:
        if not self.trees:
            return 0
        members = np.concatenate([t.members for t in self.trees])
        return int(np.bincount(members).max())


def _ball(graph: Graph, source: int, radius: float, skip: set[int]) -> dict[int, float]:
    """Truncated Dijkstra: vertices within ``radius`` of ``source`` in
    ``G \\ skip`` (dict vertex -> distance).  Reference implementation."""
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for v, ei in graph.incident(u):
            if ei in skip:
                continue
            nd = d + graph.weight(ei)
            if nd <= radius and nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def _component_and_ecc(
    graph: Graph, root: int, skip: set[int]
) -> tuple[list[int], float]:
    """Component of ``root`` in G \\ skip and the eccentricity of root.

    Single-source and *unbounded*, so the heap Dijkstra is the right
    tool on both engines: the label-correcting SSSP kernel would run
    one all-arc round per shortest-path hop, which is O(n m) on
    high-diameter components.  The batched kernel is reserved for the
    radius-truncated all-centers ball computation.
    """
    dist = _ball(graph, root, math.inf, skip)
    return sorted(dist), max(dist.values(), default=0.0)


def sparse_cover(
    graph: Graph,
    rho: float,
    k: int,
    forbidden_edges: Iterable[int] = (),
    max_cluster_growth: Optional[float] = None,
    engine: str = "csr",
) -> TreeCover:
    """Build a ``(rho, k)`` tree cover of ``G \\ forbidden_edges``.

    ``max_cluster_growth`` overrides the ``n^{1/k}`` kernel growth bound
    (used by tests to force multi-round behaviour).  ``engine`` selects
    the batched CSR ball kernel (default) or the sequential reference.
    """
    if rho <= 0 or k < 1:
        raise ValueError("need rho > 0 and k >= 1")
    if engine not in ("csr", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    skip = set(forbidden_edges)
    use_csr = engine == "csr"
    skip_mask = csrk.forbidden_mask(graph.m, skip) if use_csr else None
    growth = (
        max_cluster_growth
        if max_cluster_growth is not None
        else max(graph.n, 2) ** (1.0 / k)
    )
    trees: list[CoverTree] = []
    home_v_parts: list[np.ndarray] = []
    home_i_parts: list[np.ndarray] = []
    assigned_component: set[int] = set()
    for root in graph.vertices():
        if root in assigned_component:
            continue
        comp, ecc = _component_and_ecc(graph, root, skip)
        assigned_component.update(comp)
        if ecc <= rho:
            # The whole component is a single ball: one cluster suffices.
            idx = len(trees)
            comp_arr = np.asarray(comp, dtype=np.int64)
            trees.append(
                CoverTree(index=idx, center=root, vertices=comp_arr, radius=ecc)
            )
            home_v_parts.append(comp_arr)
            home_i_parts.append(np.full(comp_arr.size, idx, dtype=np.int64))
            continue
        _cover_component(
            graph, comp, rho, growth, skip, use_csr, skip_mask,
            trees, home_v_parts, home_i_parts,
        )
    if home_v_parts:
        hv = np.concatenate(home_v_parts)
        hi = np.concatenate(home_i_parts)
        srt = np.argsort(hv, kind="stable")
        hv, hi = hv[srt], hi[srt]
    else:
        hv = np.zeros(0, dtype=np.int64)
        hi = np.zeros(0, dtype=np.int64)
    return TreeCover(rho=rho, k=k, trees=trees, home=(hv, hi))


def _cover_component(
    graph: Graph,
    comp: list[int],
    rho: float,
    growth: float,
    skip: set[int],
    use_csr: bool,
    skip_mask: Optional[np.ndarray],
    trees: list[CoverTree],
    home_v_parts: list[np.ndarray],
    home_i_parts: list[np.ndarray],
) -> None:
    if use_csr:
        # Batched truncated SSSP gives every center's ball at once;
        # the kernel chunks sources (bounded memory) and falls back to
        # heap Dijkstra on hop-deep chunks (bounded rounds).
        ball_list = csrk.truncated_balls(
            graph.as_csr(), comp, radius=rho, forbidden=skip_mask
        )
        balls = dict(zip(comp, ball_list))
    else:
        balls = {v: _ball(graph, v, rho, skip) for v in comp}
    inv: dict[int, set[int]] = {v: set() for v in comp}
    for center, ball in balls.items():
        for w in ball:
            inv[w].add(center)
    remaining = set(comp)
    while remaining:
        blocked: set[int] = set()
        progressed = False
        for v in comp:
            if v not in remaining or v in blocked:
                continue
            progressed = True
            kernel = set(balls[v])
            while True:
                z_centers: set[int] = set()
                for w in kernel:
                    z_centers |= inv[w]
                z_centers &= remaining
                z_vertices: set[int] = set()
                for u in z_centers:
                    z_vertices |= balls[u].keys()
                if len(z_vertices) <= growth * len(kernel):
                    break
                kernel = z_vertices
            idx = len(trees)
            center_dist = _ball_within(graph, v, z_vertices, skip)
            radius = max(center_dist.values(), default=0.0)
            trees.append(
                CoverTree(
                    index=idx,
                    center=v,
                    vertices=np.asarray(sorted(z_vertices), dtype=np.int64),
                    radius=radius,
                )
            )
            zc = np.asarray(sorted(z_centers), dtype=np.int64)
            home_v_parts.append(zc)
            home_i_parts.append(np.full(zc.size, idx, dtype=np.int64))
            remaining -= z_centers
            for w in z_vertices:
                blocked |= inv[w] & remaining
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("sparse cover made no progress")


def _ball_within(
    graph: Graph, source: int, allowed: set[int], skip: set[int]
) -> dict[int, float]:
    """Dijkstra from ``source`` restricted to the ``allowed`` vertex set.

    Single-source and unbounded within the cluster — heap Dijkstra, see
    :func:`_component_and_ecc`.
    """
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for v, ei in graph.incident(u):
            if ei in skip or v not in allowed:
                continue
            nd = d + graph.weight(ei)
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
