"""Tree routing (Fact 5.1 [TZ01]) and its Γ-augmented variant (Claim 5.6).

The scheme is the heavy-light variant of Thorup-Zwick tree routing:

* the *label* of ``t`` stores its DFS interval plus, for every light
  edge on the root-to-t path, the parent endpoint's id and the port of
  the edge at the parent;
* the *table* of ``u`` stores its DFS interval, the parent port, and
  the heavy child's id/port/interval.

Routing at ``u`` towards label ``L(t)``: if ``t`` is outside ``u``'s
subtree go to the parent; if it is inside the heavy child's subtree use
the heavy port; otherwise the first edge of the path is a light edge
``(u, c)`` which appears in ``L(t)`` — use its recorded port.

The Γ-augmented variant (Claim 5.6) additionally records, for each such
edge ``e``, the ports of the vertices in the block ``Γ_T(e)`` — the
``f+1`` (up to ``2f+1``) children of ``u`` that replicate the routing
label of ``e`` in the load-balanced tables of Theorem 5.8.

Because the trees of the tree cover live on *local* vertex sets while
messages travel the *global* network, the scheme accepts ``id_of`` /
``port_fn`` hooks translating local tree vertices to global ids and
global ports; DFS intervals stay local to the tree (they are only ever
compared with each other).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.graph.ancestry import AncestryLabeling
from repro.graph.spanning_tree import RootedTree
from repro.sizing.bits import bits_for_count, bits_for_id
from repro.trees.heavy_light import HeavyLightDecomposition


@dataclass(frozen=True)
class TreeRouteEntry:
    """One light edge (parent -> child) on the root-to-target path."""

    parent_id: int
    port: int
    gamma_ports: tuple[int, ...] = ()


@dataclass(frozen=True)
class TreeLabel:
    """Tree-routing label of a vertex: O(f log^2 n) bits in Γ mode."""

    vid: int
    tin: int
    tout: int
    entries: tuple[TreeRouteEntry, ...]


@dataclass(frozen=True)
class TreeTable:
    """Tree-routing table of a vertex: O(f log n) bits."""

    vid: int
    tin: int
    tout: int
    parent_port: int  # -1 at the root
    heavy_id: int  # -1 at leaves
    heavy_port: int
    heavy_tin: int
    heavy_tout: int
    heavy_gamma_ports: tuple[int, ...] = ()


class PackedTreeRouting:
    """Array-native view of one tree's routing state.

    Flattens everything :meth:`TreeRoutingScheme.next_hop` reads — DFS
    intervals, parent/heavy ports, per-child light-edge ports, and the
    Γ_T(e) port blocks of Claim 5.6 — into contiguous numpy arrays over
    the tree's (local) vertex ids, so a batched message stepper can
    compute next hops for many in-flight messages with gathers instead
    of per-hop table objects and label decoding.

    Layout (all indexed by local vertex id unless noted):

    * ``tin``/``tout`` — the same DFS intervals the wire-format tables
      carry (shared with the scheme's :class:`AncestryLabeling`, so
      packed decisions equal :meth:`TreeRoutingScheme.next_hop` bit for
      bit);
    * ``parent``/``parent_port`` — tree parent and the port towards it
      (-1 at the root);
    * ``heavy``/``heavy_port``/``heavy_tin``/``heavy_tout`` — the heavy
      child fields of :class:`TreeTable`;
    * ``child_indptr``/``child_local``/``child_tin``/``child_tout``/
      ``child_port`` — CSR rows of each vertex's children sorted by
      ``tin``: the child on the path towards a target inside the
      subtree is found by one ``searchsorted`` on its ``tin`` (packed
      stand-in for scanning the target label's light entries — same
      edge, same port, because light entries record exactly these
      (parent, child) ports);
    * ``gamma_indptr``/``gamma_port``/``gamma_member`` — CSR rows *per
      child* ``c``: the ports at ``parent(c)`` towards the Γ members of
      the edge (parent(c), c) and the members themselves, in the exact
      order :meth:`TreeRoutingScheme.gamma_members` reports (the fault
      bounce-back walks them in that order);
    * ``stores_child`` — per vertex, whether it holds its child-edge
      labels itself (the small-degree case of Claim 5.6; always true
      without Γ mode).
    """

    #: the slots persisted by the snapshot store; ``__slots__`` is
    #: derived from this plus the load-time-derived ``child_key``, so a
    #: new array field cannot silently miss the persisted set.
    _ARRAY_FIELDS = (
        "tin", "tout", "parent", "parent_port",
        "heavy", "heavy_port", "heavy_tin", "heavy_tout",
        "child_indptr", "child_local", "child_tin", "child_tout",
        "child_port",
        "gamma_indptr", "gamma_port", "gamma_member", "stores_child",
    )

    __slots__ = _ARRAY_FIELDS + ("child_key",)

    def __init__(self, scheme: "TreeRoutingScheme"):
        tree = scheme.tree
        n = tree.graph.n
        anc = scheme._anc
        hld = scheme._hld
        port_fn = scheme._port_fn
        tin, tout = anc.interval_arrays()
        tin = np.ascontiguousarray(tin, dtype=np.int64)
        tout = np.ascontiguousarray(tout, dtype=np.int64)
        self.tin = tin
        self.tout = tout
        arr = tree.arrays()
        parent = arr.parent
        self.parent = parent
        parent_port = np.full(n, -1, dtype=np.int64)
        for v in arr.order[1:].tolist():
            parent_port[v] = port_fn(v, int(parent[v]))
        self.parent_port = parent_port
        heavy, _ = hld.arrays()
        self.heavy = heavy
        heavy_port = np.full(n, -1, dtype=np.int64)
        heavy_tin = np.zeros(n, dtype=np.int64)
        heavy_tout = np.zeros(n, dtype=np.int64)
        hv = np.flatnonzero(heavy >= 0)
        for v in hv.tolist():
            h = int(heavy[v])
            heavy_port[v] = port_fn(v, h)
            heavy_tin[v] = tin[h]
            heavy_tout[v] = tout[h]
        self.heavy_port = heavy_port
        self.heavy_tin = heavy_tin
        self.heavy_tout = heavy_tout
        # Children CSR, sorted by tin within each parent (preorder
        # assigns tin in ascending child-id order, so this matches the
        # deterministic child order everywhere else).
        counts = np.zeros(n, dtype=np.int64)
        in_tree = np.flatnonzero(parent >= 0)
        np.add.at(counts, parent[in_tree], 1)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        order = np.argsort(
            parent[in_tree] * np.int64(2 * n + 2) + tin[in_tree], kind="stable"
        )
        child_local = in_tree[order]
        self.child_indptr = indptr
        self.child_local = child_local
        self.child_tin = tin[child_local]
        self.child_tout = tout[child_local]
        child_port = np.empty(child_local.size, dtype=np.int64)
        cl = child_local.tolist()
        pl = parent[child_local].tolist()
        for i, (c, p) in enumerate(zip(cl, pl)):
            child_port[i] = port_fn(p, c)
        self.child_port = child_port
        # Γ blocks per child, in gamma_members order; empty without Γ.
        gamma_indptr = np.zeros(n + 1, dtype=np.int64)
        gports: list[int] = []
        gmembers: list[int] = []
        if scheme.gamma_f is not None:
            gcounts = np.zeros(n, dtype=np.int64)
            per_child: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {}
            for c in cl:
                p = int(parent[c])
                members = scheme.gamma_members(c)
                ports = scheme._gamma_ports(p, c)
                per_child[c] = (members, ports)
                gcounts[c] = len(members)
            gamma_indptr = np.concatenate(([0], np.cumsum(gcounts)))
            for c in range(n):
                ent = per_child.get(c)
                if ent is not None:
                    gmembers.extend(ent[0])
                    gports.extend(ent[1])
        self.gamma_indptr = gamma_indptr
        self.gamma_port = np.asarray(gports, dtype=np.int64)
        self.gamma_member = np.asarray(gmembers, dtype=np.int64)
        self.stores_child = np.asarray(
            [scheme.stores_child_labels(v) for v in range(n)], dtype=bool
        )
        self._finalize()

    def _finalize(self) -> None:
        """Derive the composite search keys of the child CSR.

        ``child_key[i] = parent(child_i) * (2n+2) + tin(child_i)`` is
        globally ascending (slots are grouped by parent and tin-sorted
        within each group, and tin < 2n+2), so one ``searchsorted``
        over the whole array answers the per-row light-child lookup for
        every message at once (see :meth:`next_hop_many`).
        """
        big = np.int64(2 * self.tin.size + 2)
        self.child_key = self.parent[self.child_local] * big + self.child_tin

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.store)
    # ------------------------------------------------------------------
    def __arrays__(self) -> dict[str, np.ndarray]:
        """The persistable array set (the ``repro.store`` protocol)."""
        return {name: getattr(self, name) for name in self._ARRAY_FIELDS}

    @classmethod
    def from_arrays(cls, arrays: dict) -> "PackedTreeRouting":
        """Rebuild a packed view from :meth:`__arrays__` output.

        Accepts read-only (memory-mapped) arrays — every kernel on this
        class only reads them — and recomputes the derived search keys.
        """
        self = object.__new__(cls)
        for name in cls._ARRAY_FIELDS:
            setattr(self, name, arrays[name])
        self._finalize()
        return self

    def next_hop_many(
        self, lu: np.ndarray, lt: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`TreeRoutingScheme.next_hop` on local vertices.

        Returns ``(action, port, nxt)`` arrays: ``action`` is 0 when the
        message has arrived (``lu == lt``), 1 for a parent hop, 2 for a
        heavy-child hop, 3 for a light-child hop; ``port`` is the chosen
        port at ``lu`` (undefined for action 0) and ``nxt`` the local
        vertex it leads to.  Decisions are identical to the scalar
        table/label computation: the same interval containment tests in
        the same order, and the light child is the unique child whose
        interval contains the target's — the edge the target label's
        light entry records.
        """
        tin, tout = self.tin, self.tout
        action = np.zeros(lu.size, dtype=np.int64)
        port = np.full(lu.size, -1, dtype=np.int64)
        nxt = np.full(lu.size, -1, dtype=np.int64)
        moving = lu != lt
        if not moving.any():
            return action, port, nxt
        t_tin = tin[lt]
        t_tout = tout[lt]
        inside = (tin[lu] <= t_tin) & (t_tout <= tout[lu]) & moving
        up = moving & ~inside
        if up.any():
            if (self.parent[lu[up]] < 0).any():
                raise ValueError("target outside the tree")
            action[up] = 1
            port[up] = self.parent_port[lu[up]]
            nxt[up] = self.parent[lu[up]]
        hv = inside & (self.heavy[lu] >= 0) \
            & (self.heavy_tin[lu] <= t_tin) & (t_tout <= self.heavy_tout[lu])
        if hv.any():
            action[hv] = 2
            port[hv] = self.heavy_port[lu[hv]]
            nxt[hv] = self.heavy[lu[hv]]
        light = inside & ~hv
        if light.any():
            # One ragged searchsorted for every light-child lookup: the
            # composite keys make the per-parent CSR rows one globally
            # sorted array, so ``searchsorted(child_key, u*(2n+2)+t_tin,
            # "right") - 1`` lands on exactly the slot the per-row
            # search found (earlier rows' keys are < u*(2n+2), later
            # rows' are > any key of row u).
            li = np.flatnonzero(light)
            u = lu[li]
            tt = t_tin[li]
            big = np.int64(2 * tin.size + 2)
            pos = np.searchsorted(self.child_key, u * big + tt, side="right") - 1
            ok = pos >= self.child_indptr[u]
            pos = np.maximum(pos, 0)
            ok &= (self.child_tin[pos] <= tt) & (t_tout[li] <= self.child_tout[pos])
            if not ok.all():  # pragma: no cover - implies a corrupt tree label
                raise ValueError(
                    "inconsistent tree label: no light entry at this vertex"
                )
            action[li] = 3
            port[li] = self.child_port[pos]
            nxt[li] = self.child_local[pos]
        return action, port, nxt

    def gamma_row(self, child: int) -> tuple[list[int], list[int]]:
        """``(ports, members)`` of the Γ block replicating the label of
        the edge (parent(child), child), in Claim 5.6 order."""
        lo, hi = int(self.gamma_indptr[child]), int(self.gamma_indptr[child + 1])
        return self.gamma_port[lo:hi].tolist(), self.gamma_member[lo:hi].tolist()


class TreeRoutingScheme:
    """Labels + tables + next-hop computation for one rooted tree."""

    def __init__(
        self,
        tree: RootedTree,
        gamma_f: Optional[int] = None,
        id_of: Optional[Callable[[int], int]] = None,
        port_fn: Optional[Callable[[int, int], int]] = None,
        id_space: Optional[int] = None,
    ):
        self.tree = tree
        self.gamma_f = gamma_f
        graph = tree.graph
        self._id_of = id_of if id_of is not None else (lambda v: v)
        self._port_fn = port_fn if port_fn is not None else graph.port_of
        self.id_space = id_space if id_space is not None else graph.n
        self._anc = AncestryLabeling(tree)
        self._hld = HeavyLightDecomposition(tree)
        self._packed: Optional[PackedTreeRouting] = None
        # Γ blocks: for each tree child c of u, the list of children of u
        # replicating the label of the edge (u, c) (Claim 5.6).
        self._gamma: dict[int, tuple[int, ...]] = {}
        if gamma_f is not None:
            for u in tree.vertices:
                kids = tree.children[u]
                if len(kids) <= gamma_f + 1:
                    for c in kids:
                        self._gamma[c] = tuple(kids)
                    continue
                block_size = gamma_f + 1
                num_full = len(kids) // block_size
                for b in range(num_full):
                    start = b * block_size
                    end = start + block_size
                    if b == num_full - 1:
                        end = len(kids)  # last block absorbs the remainder
                    block = tuple(kids[start:end])
                    for c in block:
                        self._gamma[c] = block

    def packed(self) -> PackedTreeRouting:
        """The memoized :class:`PackedTreeRouting` array view."""
        if self._packed is None:
            self._packed = PackedTreeRouting(self)
        return self._packed

    # ------------------------------------------------------------------
    # Γ queries (Claim 5.6 / Section 5.2)
    # ------------------------------------------------------------------
    def gamma_members(self, child: int) -> tuple[int, ...]:
        """Local tree vertices storing the label of the edge
        (parent(child), child).

        In Γ mode with deg(parent) <= f+1 this is all children (plus the
        parent itself, which stores its child labels directly — see
        ``stores_child_labels``); otherwise it is the child's block.
        """
        if self.gamma_f is None:
            return (child,)
        return self._gamma.get(child, (child,))

    def stores_child_labels(self, u: int) -> bool:
        """True iff ``u`` itself stores the labels of its child edges
        (the small-degree case of Claim 5.6)."""
        if self.gamma_f is None:
            return True
        return len(self.tree.children[u]) <= self.gamma_f + 1

    def _gamma_ports(self, u: int, child: int) -> tuple[int, ...]:
        """Ports at ``u`` towards the Γ members of edge (u, child)."""
        if self.gamma_f is None:
            return ()
        return tuple(self._port_fn(u, w) for w in self.gamma_members(child))

    # ------------------------------------------------------------------
    # Labels and tables
    # ------------------------------------------------------------------
    def label(self, v: int) -> TreeLabel:
        tin, tout = self._anc.label(v)
        entries = []
        for parent, child in self._hld.light_edges_to(v):
            entries.append(
                TreeRouteEntry(
                    parent_id=self._id_of(parent),
                    port=self._port_fn(parent, child),
                    gamma_ports=self._gamma_ports(parent, child),
                )
            )
        return TreeLabel(vid=self._id_of(v), tin=tin, tout=tout, entries=tuple(entries))

    def table(self, v: int) -> TreeTable:
        tin, tout = self._anc.label(v)
        parent = self.tree.parent[v]
        parent_port = self._port_fn(v, parent) if parent >= 0 else -1
        heavy = self._hld.heavy_child[v]
        if heavy >= 0:
            h_tin, h_tout = self._anc.label(heavy)
            heavy_port = self._port_fn(v, heavy)
            heavy_gamma = self._gamma_ports(v, heavy)
            heavy_id = self._id_of(heavy)
        else:
            h_tin = h_tout = 0
            heavy_port = -1
            heavy_gamma = ()
            heavy_id = -1
        return TreeTable(
            vid=self._id_of(v),
            tin=tin,
            tout=tout,
            parent_port=parent_port,
            heavy_id=heavy_id,
            heavy_port=heavy_port,
            heavy_tin=h_tin,
            heavy_tout=h_tout,
            heavy_gamma_ports=heavy_gamma,
        )

    # ------------------------------------------------------------------
    # Next-hop computation (constant time, Fact 5.1)
    # ------------------------------------------------------------------
    @staticmethod
    def next_hop(table: TreeTable, target: TreeLabel) -> Optional[tuple[int, tuple[int, ...]]]:
        """Port (plus Γ ports of the chosen edge) from ``table``'s vertex
        towards ``target``; ``None`` when the message has arrived."""
        if table.vid == target.vid:
            return None
        inside = table.tin <= target.tin and target.tout <= table.tout
        if not inside:
            if table.parent_port < 0:
                raise ValueError("target outside the tree")
            return table.parent_port, ()
        if (
            table.heavy_id >= 0
            and table.heavy_tin <= target.tin
            and target.tout <= table.heavy_tout
        ):
            return table.heavy_port, table.heavy_gamma_ports
        for entry in target.entries:
            if entry.parent_id == table.vid:
                return entry.port, entry.gamma_ports
        raise ValueError("inconsistent tree label: no light entry at this vertex")

    # ------------------------------------------------------------------
    # Fixed-width integer encoding (for embedding labels into EIDs)
    # ------------------------------------------------------------------
    def _entry_widths(self) -> tuple[int, int, int, int]:
        id_bits = bits_for_id(max(self.id_space, 2))
        port_bits = id_bits
        gamma_max = 0 if self.gamma_f is None else 2 * self.gamma_f + 1
        gcount_bits = bits_for_count(max(gamma_max, 1))
        return id_bits, port_bits, gamma_max, gcount_bits

    def max_entries(self) -> int:
        return self._hld.max_light_depth()

    def encoded_label_bits(self) -> int:
        """Fixed encoded width of any label of this tree."""
        id_bits, port_bits, gamma_max, gcount_bits = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        entry_bits = id_bits + port_bits + gcount_bits + gamma_max * port_bits
        count_bits = bits_for_count(max(self.max_entries(), 1))
        return id_bits + 2 * time_bits + count_bits + self.max_entries() * entry_bits

    def encode_label(self, label: TreeLabel) -> int:
        """Pack a label into ``encoded_label_bits()`` bits."""
        id_bits, port_bits, gamma_max, gcount_bits = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        count_bits = bits_for_count(max(self.max_entries(), 1))
        out = label.vid
        out = (out << time_bits) | label.tin
        out = (out << time_bits) | label.tout
        out = (out << count_bits) | len(label.entries)
        for slot in range(self.max_entries()):
            if slot < len(label.entries):
                entry = label.entries[slot]
                out = (out << id_bits) | entry.parent_id
                out = (out << port_bits) | entry.port
                out = (out << gcount_bits) | len(entry.gamma_ports)
                for g in range(gamma_max):
                    port = entry.gamma_ports[g] if g < len(entry.gamma_ports) else 0
                    out = (out << port_bits) | port
            else:
                out <<= id_bits + port_bits + gcount_bits + gamma_max * port_bits
        return out

    def decode_label(self, encoded: int) -> TreeLabel:
        """Inverse of :meth:`encode_label`."""
        id_bits, port_bits, gamma_max, gcount_bits = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        count_bits = bits_for_count(max(self.max_entries(), 1))
        entry_bits = id_bits + port_bits + gcount_bits + gamma_max * port_bits
        total = id_bits + 2 * time_bits + count_bits + self.max_entries() * entry_bits

        def take(width: int) -> int:
            nonlocal total
            total -= width
            return (encoded >> total) & ((1 << width) - 1)

        vid = take(id_bits)
        tin = take(time_bits)
        tout = take(time_bits)
        count = take(count_bits)
        entries = []
        for slot in range(self.max_entries()):
            parent_id = take(id_bits)
            port = take(port_bits)
            gcount = take(gcount_bits)
            gports = tuple(take(port_bits) for _ in range(gamma_max))[:gcount]
            if slot < count:
                entries.append(
                    TreeRouteEntry(parent_id=parent_id, port=port, gamma_ports=gports)
                )
        return TreeLabel(vid=vid, tin=tin, tout=tout, entries=tuple(entries))

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def label_bits(self, v: int) -> int:
        """Actual (non-padded) label size of ``v`` in bits."""
        id_bits, port_bits, gamma_max, gcount_bits = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        lab = self.label(v)
        bits = id_bits + 2 * time_bits
        for entry in lab.entries:
            bits += id_bits + port_bits + len(entry.gamma_ports) * port_bits
        return bits

    def table_bits(self, v: int) -> int:
        id_bits, port_bits, _, _ = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        tab = self.table(v)
        return (
            id_bits
            + 2 * time_bits
            + 2 * port_bits
            + id_bits
            + 2 * time_bits
            + len(tab.heavy_gamma_ports) * port_bits
        )
