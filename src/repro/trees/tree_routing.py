"""Tree routing (Fact 5.1 [TZ01]) and its Γ-augmented variant (Claim 5.6).

The scheme is the heavy-light variant of Thorup-Zwick tree routing:

* the *label* of ``t`` stores its DFS interval plus, for every light
  edge on the root-to-t path, the parent endpoint's id and the port of
  the edge at the parent;
* the *table* of ``u`` stores its DFS interval, the parent port, and
  the heavy child's id/port/interval.

Routing at ``u`` towards label ``L(t)``: if ``t`` is outside ``u``'s
subtree go to the parent; if it is inside the heavy child's subtree use
the heavy port; otherwise the first edge of the path is a light edge
``(u, c)`` which appears in ``L(t)`` — use its recorded port.

The Γ-augmented variant (Claim 5.6) additionally records, for each such
edge ``e``, the ports of the vertices in the block ``Γ_T(e)`` — the
``f+1`` (up to ``2f+1``) children of ``u`` that replicate the routing
label of ``e`` in the load-balanced tables of Theorem 5.8.

Because the trees of the tree cover live on *local* vertex sets while
messages travel the *global* network, the scheme accepts ``id_of`` /
``port_fn`` hooks translating local tree vertices to global ids and
global ports; DFS intervals stay local to the tree (they are only ever
compared with each other).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.graph.ancestry import AncestryLabeling
from repro.graph.spanning_tree import RootedTree
from repro.sizing.bits import bits_for_count, bits_for_id
from repro.trees.heavy_light import HeavyLightDecomposition


@dataclass(frozen=True)
class TreeRouteEntry:
    """One light edge (parent -> child) on the root-to-target path."""

    parent_id: int
    port: int
    gamma_ports: tuple[int, ...] = ()


@dataclass(frozen=True)
class TreeLabel:
    """Tree-routing label of a vertex: O(f log^2 n) bits in Γ mode."""

    vid: int
    tin: int
    tout: int
    entries: tuple[TreeRouteEntry, ...]


@dataclass(frozen=True)
class TreeTable:
    """Tree-routing table of a vertex: O(f log n) bits."""

    vid: int
    tin: int
    tout: int
    parent_port: int  # -1 at the root
    heavy_id: int  # -1 at leaves
    heavy_port: int
    heavy_tin: int
    heavy_tout: int
    heavy_gamma_ports: tuple[int, ...] = ()


class TreeRoutingScheme:
    """Labels + tables + next-hop computation for one rooted tree."""

    def __init__(
        self,
        tree: RootedTree,
        gamma_f: Optional[int] = None,
        id_of: Optional[Callable[[int], int]] = None,
        port_fn: Optional[Callable[[int, int], int]] = None,
        id_space: Optional[int] = None,
    ):
        self.tree = tree
        self.gamma_f = gamma_f
        graph = tree.graph
        self._id_of = id_of if id_of is not None else (lambda v: v)
        self._port_fn = port_fn if port_fn is not None else graph.port_of
        self.id_space = id_space if id_space is not None else graph.n
        self._anc = AncestryLabeling(tree)
        self._hld = HeavyLightDecomposition(tree)
        # Γ blocks: for each tree child c of u, the list of children of u
        # replicating the label of the edge (u, c) (Claim 5.6).
        self._gamma: dict[int, tuple[int, ...]] = {}
        if gamma_f is not None:
            for u in tree.vertices:
                kids = tree.children[u]
                if len(kids) <= gamma_f + 1:
                    for c in kids:
                        self._gamma[c] = tuple(kids)
                    continue
                block_size = gamma_f + 1
                num_full = len(kids) // block_size
                for b in range(num_full):
                    start = b * block_size
                    end = start + block_size
                    if b == num_full - 1:
                        end = len(kids)  # last block absorbs the remainder
                    block = tuple(kids[start:end])
                    for c in block:
                        self._gamma[c] = block

    # ------------------------------------------------------------------
    # Γ queries (Claim 5.6 / Section 5.2)
    # ------------------------------------------------------------------
    def gamma_members(self, child: int) -> tuple[int, ...]:
        """Local tree vertices storing the label of the edge
        (parent(child), child).

        In Γ mode with deg(parent) <= f+1 this is all children (plus the
        parent itself, which stores its child labels directly — see
        ``stores_child_labels``); otherwise it is the child's block.
        """
        if self.gamma_f is None:
            return (child,)
        return self._gamma.get(child, (child,))

    def stores_child_labels(self, u: int) -> bool:
        """True iff ``u`` itself stores the labels of its child edges
        (the small-degree case of Claim 5.6)."""
        if self.gamma_f is None:
            return True
        return len(self.tree.children[u]) <= self.gamma_f + 1

    def _gamma_ports(self, u: int, child: int) -> tuple[int, ...]:
        """Ports at ``u`` towards the Γ members of edge (u, child)."""
        if self.gamma_f is None:
            return ()
        return tuple(self._port_fn(u, w) for w in self.gamma_members(child))

    # ------------------------------------------------------------------
    # Labels and tables
    # ------------------------------------------------------------------
    def label(self, v: int) -> TreeLabel:
        tin, tout = self._anc.label(v)
        entries = []
        for parent, child in self._hld.light_edges_to(v):
            entries.append(
                TreeRouteEntry(
                    parent_id=self._id_of(parent),
                    port=self._port_fn(parent, child),
                    gamma_ports=self._gamma_ports(parent, child),
                )
            )
        return TreeLabel(vid=self._id_of(v), tin=tin, tout=tout, entries=tuple(entries))

    def table(self, v: int) -> TreeTable:
        tin, tout = self._anc.label(v)
        parent = self.tree.parent[v]
        parent_port = self._port_fn(v, parent) if parent >= 0 else -1
        heavy = self._hld.heavy_child[v]
        if heavy >= 0:
            h_tin, h_tout = self._anc.label(heavy)
            heavy_port = self._port_fn(v, heavy)
            heavy_gamma = self._gamma_ports(v, heavy)
            heavy_id = self._id_of(heavy)
        else:
            h_tin = h_tout = 0
            heavy_port = -1
            heavy_gamma = ()
            heavy_id = -1
        return TreeTable(
            vid=self._id_of(v),
            tin=tin,
            tout=tout,
            parent_port=parent_port,
            heavy_id=heavy_id,
            heavy_port=heavy_port,
            heavy_tin=h_tin,
            heavy_tout=h_tout,
            heavy_gamma_ports=heavy_gamma,
        )

    # ------------------------------------------------------------------
    # Next-hop computation (constant time, Fact 5.1)
    # ------------------------------------------------------------------
    @staticmethod
    def next_hop(table: TreeTable, target: TreeLabel) -> Optional[tuple[int, tuple[int, ...]]]:
        """Port (plus Γ ports of the chosen edge) from ``table``'s vertex
        towards ``target``; ``None`` when the message has arrived."""
        if table.vid == target.vid:
            return None
        inside = table.tin <= target.tin and target.tout <= table.tout
        if not inside:
            if table.parent_port < 0:
                raise ValueError("target outside the tree")
            return table.parent_port, ()
        if (
            table.heavy_id >= 0
            and table.heavy_tin <= target.tin
            and target.tout <= table.heavy_tout
        ):
            return table.heavy_port, table.heavy_gamma_ports
        for entry in target.entries:
            if entry.parent_id == table.vid:
                return entry.port, entry.gamma_ports
        raise ValueError("inconsistent tree label: no light entry at this vertex")

    # ------------------------------------------------------------------
    # Fixed-width integer encoding (for embedding labels into EIDs)
    # ------------------------------------------------------------------
    def _entry_widths(self) -> tuple[int, int, int, int]:
        id_bits = bits_for_id(max(self.id_space, 2))
        port_bits = id_bits
        gamma_max = 0 if self.gamma_f is None else 2 * self.gamma_f + 1
        gcount_bits = bits_for_count(max(gamma_max, 1))
        return id_bits, port_bits, gamma_max, gcount_bits

    def max_entries(self) -> int:
        return self._hld.max_light_depth()

    def encoded_label_bits(self) -> int:
        """Fixed encoded width of any label of this tree."""
        id_bits, port_bits, gamma_max, gcount_bits = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        entry_bits = id_bits + port_bits + gcount_bits + gamma_max * port_bits
        count_bits = bits_for_count(max(self.max_entries(), 1))
        return id_bits + 2 * time_bits + count_bits + self.max_entries() * entry_bits

    def encode_label(self, label: TreeLabel) -> int:
        """Pack a label into ``encoded_label_bits()`` bits."""
        id_bits, port_bits, gamma_max, gcount_bits = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        count_bits = bits_for_count(max(self.max_entries(), 1))
        out = label.vid
        out = (out << time_bits) | label.tin
        out = (out << time_bits) | label.tout
        out = (out << count_bits) | len(label.entries)
        for slot in range(self.max_entries()):
            if slot < len(label.entries):
                entry = label.entries[slot]
                out = (out << id_bits) | entry.parent_id
                out = (out << port_bits) | entry.port
                out = (out << gcount_bits) | len(entry.gamma_ports)
                for g in range(gamma_max):
                    port = entry.gamma_ports[g] if g < len(entry.gamma_ports) else 0
                    out = (out << port_bits) | port
            else:
                out <<= id_bits + port_bits + gcount_bits + gamma_max * port_bits
        return out

    def decode_label(self, encoded: int) -> TreeLabel:
        """Inverse of :meth:`encode_label`."""
        id_bits, port_bits, gamma_max, gcount_bits = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        count_bits = bits_for_count(max(self.max_entries(), 1))
        entry_bits = id_bits + port_bits + gcount_bits + gamma_max * port_bits
        total = id_bits + 2 * time_bits + count_bits + self.max_entries() * entry_bits

        def take(width: int) -> int:
            nonlocal total
            total -= width
            return (encoded >> total) & ((1 << width) - 1)

        vid = take(id_bits)
        tin = take(time_bits)
        tout = take(time_bits)
        count = take(count_bits)
        entries = []
        for slot in range(self.max_entries()):
            parent_id = take(id_bits)
            port = take(port_bits)
            gcount = take(gcount_bits)
            gports = tuple(take(port_bits) for _ in range(gamma_max))[:gcount]
            if slot < count:
                entries.append(
                    TreeRouteEntry(parent_id=parent_id, port=port, gamma_ports=gports)
                )
        return TreeLabel(vid=vid, tin=tin, tout=tout, entries=tuple(entries))

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def label_bits(self, v: int) -> int:
        """Actual (non-padded) label size of ``v`` in bits."""
        id_bits, port_bits, gamma_max, gcount_bits = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        lab = self.label(v)
        bits = id_bits + 2 * time_bits
        for entry in lab.entries:
            bits += id_bits + port_bits + len(entry.gamma_ports) * port_bits
        return bits

    def table_bits(self, v: int) -> int:
        id_bits, port_bits, _, _ = self._entry_widths()
        time_bits = bits_for_count(2 * self.tree.graph.n + 1)
        tab = self.table(v)
        return (
            id_bits
            + 2 * time_bits
            + 2 * port_bits
            + id_bits
            + 2 * time_bits
            + len(tab.heavy_gamma_ports) * port_bits
        )
