"""Union-find (disjoint set union) with path compression and union by rank.

Used by the Boruvka simulation of the sketch-based decoder (Claim 3.16):
component merges are unions, and the per-phase component lookup of an
original T\\F component is a find.
"""

from __future__ import annotations


class UnionFind:
    """Disjoint sets over ``0..n-1``."""

    def __init__(self, n: int):
        self._parent = list(range(n))
        self._rank = [0] * n
        self._count = n

    @property
    def set_count(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)
