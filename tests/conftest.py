"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.graph import Graph


# ----------------------------------------------------------------------
# Deterministic example graphs
# ----------------------------------------------------------------------
@pytest.fixture
def small_connected() -> Graph:
    return generators.random_connected_graph(24, extra_edges=30, seed=100)


@pytest.fixture
def medium_connected() -> Graph:
    return generators.random_connected_graph(64, extra_edges=90, seed=101)


@pytest.fixture
def grid_6x6() -> Graph:
    return generators.grid_graph(6, 6)


@pytest.fixture
def weighted_graph() -> Graph:
    base = generators.random_connected_graph(32, extra_edges=40, seed=102)
    return generators.with_random_weights(base, 1, 6, seed=103)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 24, max_extra: int = 30):
    """A random connected graph with a deterministic generator seed."""
    n = draw(st.integers(min_n, max_n))
    extra = draw(st.integers(0, max_extra))
    seed = draw(st.integers(0, 10_000))
    return generators.random_connected_graph(n, extra_edges=extra, seed=seed)


@st.composite
def graphs_with_queries(draw, max_faults: int = 4, **graph_kwargs):
    """(graph, s, t, fault edge indices) with the faults distinct."""
    g = draw(connected_graphs(**graph_kwargs))
    s = draw(st.integers(0, g.n - 1))
    t = draw(st.integers(0, g.n - 1))
    num_faults = draw(st.integers(0, min(max_faults, g.m)))
    faults = draw(
        st.lists(
            st.integers(0, g.m - 1),
            min_size=num_faults,
            max_size=num_faults,
            unique=True,
        )
    )
    return g, s, t, faults


def random_fault_sets(graph: Graph, count: int, max_size: int, seed: int):
    """Deterministic list of random fault sets for loop-style tests."""
    rnd = random.Random(seed)
    out = []
    for _ in range(count):
        size = rnd.randint(0, min(max_size, graph.m))
        out.append(rnd.sample(range(graph.m), size))
    return out
