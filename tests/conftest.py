"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
import signal
import socket

import pytest
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.graph import Graph

#: hard wall-clock cap for one ``network``-marked test; generous — the
#: watchdog exists to turn a wedged server into a failure, not to time
#: healthy tests.
NETWORK_TEST_TIMEOUT_S = 120


def ephemeral_port() -> int:
    """A free TCP port on localhost (bind-to-0, close, reuse).

    Servers under test prefer ``port=0`` and report the bound port;
    this helper is for the paths that need a number up front (CLI
    subprocesses, config files).
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture(name="ephemeral_port")
def ephemeral_port_fixture() -> int:
    return ephemeral_port()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Per-test watchdog for ``network``-marked tests.

    Socket tests await reads from a live server process; a server bug
    that stops responding must fail the test, never hang tier-1.  No
    third-party timeout plugin is available, so SIGALRM (main thread,
    POSIX — exactly where the suite runs) raises inside the test after
    :data:`NETWORK_TEST_TIMEOUT_S`.
    """
    if item.get_closest_marker("network") is None or not hasattr(
        signal, "SIGALRM"
    ):
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"network test exceeded {NETWORK_TEST_TIMEOUT_S}s watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(NETWORK_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Deterministic example graphs
# ----------------------------------------------------------------------
@pytest.fixture
def small_connected() -> Graph:
    return generators.random_connected_graph(24, extra_edges=30, seed=100)


@pytest.fixture
def medium_connected() -> Graph:
    return generators.random_connected_graph(64, extra_edges=90, seed=101)


@pytest.fixture
def grid_6x6() -> Graph:
    return generators.grid_graph(6, 6)


@pytest.fixture
def weighted_graph() -> Graph:
    base = generators.random_connected_graph(32, extra_edges=40, seed=102)
    return generators.with_random_weights(base, 1, 6, seed=103)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 24, max_extra: int = 30):
    """A random connected graph with a deterministic generator seed."""
    n = draw(st.integers(min_n, max_n))
    extra = draw(st.integers(0, max_extra))
    seed = draw(st.integers(0, 10_000))
    return generators.random_connected_graph(n, extra_edges=extra, seed=seed)


@st.composite
def graphs_with_queries(draw, max_faults: int = 4, **graph_kwargs):
    """(graph, s, t, fault edge indices) with the faults distinct."""
    g = draw(connected_graphs(**graph_kwargs))
    s = draw(st.integers(0, g.n - 1))
    t = draw(st.integers(0, g.n - 1))
    num_faults = draw(st.integers(0, min(max_faults, g.m)))
    faults = draw(
        st.lists(
            st.integers(0, g.m - 1),
            min_size=num_faults,
            max_size=num_faults,
            unique=True,
        )
    )
    return g, s, t, faults


def random_fault_sets(graph: Graph, count: int, max_size: int, seed: int):
    """Deterministic list of random fault sets for loop-style tests."""
    rnd = random.Random(seed)
    out = []
    for _ in range(count):
        size = rnd.randint(0, min(max_size, graph.m))
        out.append(rnd.sample(range(graph.m), size))
    return out
