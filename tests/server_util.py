"""Test harness: run a :class:`LabelServer` on a background thread.

Blocking test code (sync clients, raw sockets) needs a live server
without owning the event loop, so the harness runs the server's
asyncio loop on a daemon thread and exposes thread-safe entry points.
Async tests don't need this — they create the server inside their own
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import threading

from repro.server import LabelServer


class ServerThread:
    """A live server for the duration of a ``with`` block.

    ``ServerThread(backend, num_shards=2, ...)`` accepts everything
    :class:`LabelServer` does; the bound port is ``self.port`` once
    the context is entered.
    """

    def __init__(self, backend=None, **kw):
        self._backend = backend
        self._kw = kw
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: LabelServer | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self.port: int = 0

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def _up():
            self._server = LabelServer(self._backend, **self._kw)
            await self._server.start()
            self.port = self._server.port

        try:
            loop.run_until_complete(_up())
        except BaseException as exc:  # surface build errors in the test
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._server.aclose())
            loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=120):
            raise TimeoutError("server did not start within 120s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=120)

    @property
    def server(self) -> LabelServer:
        return self._server

    def run(self, coro, timeout: float = 120.0):
        """Run a coroutine on the server's loop; return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)
