"""Unit + property tests for ancestry labels (Lemma 3.1)."""

from hypothesis import given, settings

from repro.graph import generators
from repro.graph.ancestry import (
    AncestryLabeling,
    edge_on_root_path,
    is_ancestor,
    strict_ancestor,
)
from repro.graph.spanning_tree import RootedTree
from tests.conftest import connected_graphs


def _true_ancestors(tree, v):
    out = set()
    x = v
    while x != -1:
        out.add(x)
        x = tree.parent[x]
    return out


class TestAncestorQueries:
    @settings(max_examples=25, deadline=None)
    @given(connected_graphs(max_n=20))
    def test_matches_brute_force(self, g):
        tree = RootedTree.bfs(g, root=0)
        anc = AncestryLabeling(tree)
        for u in range(g.n):
            ancestors_u = _true_ancestors(tree, u)
            for w in range(g.n):
                expected = w in ancestors_u
                assert is_ancestor(anc.label(w), anc.label(u)) == expected

    def test_self_is_ancestor(self, small_connected):
        anc = AncestryLabeling(RootedTree.bfs(small_connected, root=0))
        for v in range(small_connected.n):
            assert is_ancestor(anc.label(v), anc.label(v))
            assert not strict_ancestor(anc.label(v), anc.label(v))

    def test_root_is_ancestor_of_all(self, small_connected):
        tree = RootedTree.bfs(small_connected, root=0)
        anc = AncestryLabeling(tree)
        for v in range(small_connected.n):
            assert is_ancestor(anc.label(0), anc.label(v))

    def test_intervals_are_unique_times(self, medium_connected):
        tree = RootedTree.bfs(medium_connected, root=0)
        anc = AncestryLabeling(tree)
        times = []
        for v in range(medium_connected.n):
            tin, tout = anc.label(v)
            assert tin < tout
            times.extend([tin, tout])
        assert len(set(times)) == len(times)
        assert anc.max_time == 2 * medium_connected.n

    def test_bit_length_is_logarithmic(self):
        assert AncestryLabeling.bit_length(1024) == 2 * 11


class TestEdgeOnRootPath:
    @settings(max_examples=20, deadline=None)
    @given(connected_graphs(max_n=16))
    def test_matches_path_membership(self, g):
        tree = RootedTree.bfs(g, root=0)
        anc = AncestryLabeling(tree)
        for x in range(g.n):
            root_path = tree.path_to_root(x)
            path_edges = set()
            for a, b in zip(root_path, root_path[1:]):
                path_edges.add(frozenset((a, b)))
            for v in tree.vertices:
                if v == tree.root:
                    continue
                u = tree.parent[v]
                expected = frozenset((u, v)) in path_edges
                got = edge_on_root_path(anc.label(u), anc.label(v), anc.label(x))
                assert got == expected


class TestErrors:
    def test_unspanned_vertex_raises(self):
        g = generators.cycle_graph(6)
        tree = RootedTree.bfs(g, root=0, forbidden=[1, 4])
        anc = AncestryLabeling(tree)
        outside = [v for v in range(6) if not tree.spans(v)]
        assert outside
        import pytest

        with pytest.raises(ValueError):
            anc.label(outside[0])
