"""Tests for the baselines and the Ω(f) lower-bound construction."""

import math
import random

import pytest

from repro.graph import generators
from repro.oracles import DistanceOracle
from repro.routing.baselines import InteriorRoutingBaseline, TreeCoverRoutingBaseline
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.lower_bound import (
    adversarial_fault_sets,
    measure_router_on_lower_bound,
    sequential_strategy_expected_stretch,
    simulate_sequential_strategy,
)
from tests.conftest import random_fault_sets


class TestInteriorBaseline:
    def test_delivers_whenever_connected(self):
        g = generators.random_connected_graph(24, extra_edges=30, seed=2)
        baseline = InteriorRoutingBaseline(g)
        oracle = DistanceOracle(g)
        rnd = random.Random(4)
        for faults in random_fault_sets(g, 40, 4, seed=5):
            s, t = rnd.sample(range(g.n), 2)
            res = baseline.route(s, t, faults)
            expected = not math.isinf(oracle.distance(s, t, faults))
            assert res.delivered == expected

    def test_optimal_without_faults(self):
        g = generators.with_random_weights(generators.grid_graph(4, 4), 1, 5, seed=3)
        baseline = InteriorRoutingBaseline(g)
        oracle = DistanceOracle(g)
        for s, t in [(0, 15), (3, 12)]:
            res = baseline.route(s, t, [])
            assert res.length == pytest.approx(oracle.distance(s, t))

    def test_tables_are_linear_size(self):
        g = generators.random_connected_graph(30, extra_edges=40, seed=6)
        baseline = InteriorRoutingBaseline(g)
        assert baseline.max_table_bits() >= g.m * 10


class TestTreeCoverBaseline:
    def test_delivers_without_faults_with_bounded_stretch(self):
        g = generators.grid_graph(5, 5)
        baseline = TreeCoverRoutingBaseline(g, k=2, seed=7)
        oracle = DistanceOracle(g)
        rnd = random.Random(8)
        for _ in range(20):
            s, t = rnd.sample(range(g.n), 2)
            res = baseline.route(s, t)
            assert res.delivered
            assert res.length <= baseline.stretch_bound() * oracle.distance(s, t) + 1e-9

    def test_fails_or_detours_under_faults(self):
        """The fault-free scheme has no recovery: a fault on its route
        kills delivery (this is the Table 1 calibration point)."""
        g = generators.grid_graph(4, 4)
        baseline = TreeCoverRoutingBaseline(g, k=2, seed=9)
        failures = 0
        for ei in range(g.m):
            res = baseline.route(0, 15, [ei])
            if not res.delivered:
                failures += 1
        assert failures > 0


class TestLowerBound:
    def test_adversarial_patterns(self):
        patterns = adversarial_fault_sets(3, 5)
        assert len(patterns) == 4
        g, s, t, faults = patterns[0]
        assert len(faults) == 3
        oracle = DistanceOracle(g)
        # Exactly one surviving path of length 5.
        assert oracle.distance(s, t, faults) == 5

    def test_analytic_expected_stretch(self):
        assert sequential_strategy_expected_stretch(0) == 1.0
        assert sequential_strategy_expected_stretch(4) == 5.0

    def test_simulation_matches_analytic(self):
        for f in (1, 2, 4):
            sim = simulate_sequential_strategy(f, path_length=30, trials=3000, seed=3)
            exact = sequential_strategy_expected_stretch(f)
            # 2(L-1)/L instead of 2L per failed trial: tolerance ~10%.
            assert abs(sim - exact) / exact < 0.15

    def test_stretch_grows_linearly_in_f(self):
        values = [
            simulate_sequential_strategy(f, path_length=40, trials=2000, seed=4)
            for f in (1, 3, 7)
        ]
        assert values[0] < values[1] < values[2]
        assert values[2] > 6.0

    def test_our_router_pays_omega_f_but_delivers(self):
        """Theorem 1.6 applies to every scheme — ours included."""
        f, length = 2, 6
        router = None
        patterns = adversarial_fault_sets(f, length)
        g = patterns[0][0]
        router = FaultTolerantRouter(g, f=f, k=2, seed=11)
        avg = measure_router_on_lower_bound(router.route, f, length)
        assert avg >= 1.0  # delivered on all patterns (finite)
        assert avg <= router.stretch_bound(f)
