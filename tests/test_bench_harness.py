"""Tests for the benchmark harness helpers (benchmarks/common.py) and
the standalone bench runners' row-producing functions."""

import math

import pytest

from benchmarks.common import (
    geometric_mean,
    print_table,
    sample_queries,
    workload_graph,
)
from repro.graph.components import is_connected
from repro.oracles import ConnectivityOracle


class TestWorkloads:
    @pytest.mark.parametrize("family", ["random", "grid", "weighted", "ring_of_cliques"])
    def test_families_build_connected_graphs(self, family):
        g = workload_graph(family, 36, seed=2)
        assert g.n >= 16
        assert is_connected(g)

    def test_weighted_family_has_weights(self):
        g = workload_graph("weighted", 24, seed=3)
        assert g.max_weight() > 1.0

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            workload_graph("mystery", 10)


class TestSampleQueries:
    def test_deterministic(self):
        g = workload_graph("random", 24, seed=4)
        a = sample_queries(g, 10, 3, seed=5)
        b = sample_queries(g, 10, 3, seed=5)
        assert a == b

    def test_connected_only_filter(self):
        g = workload_graph("random", 24, seed=6)
        oracle = ConnectivityOracle(g)
        for s, t, faults in sample_queries(g, 15, 4, seed=7, connected_only=True):
            assert oracle.connected(s, t, faults)

    def test_fault_sets_are_valid(self):
        g = workload_graph("random", 24, seed=8)
        for s, t, faults in sample_queries(g, 15, 4, seed=9):
            assert 0 <= s < g.n and 0 <= t < g.n and s != t
            assert len(set(faults)) == len(faults)
            assert all(0 <= ei < g.m for ei in faults)


class TestStatistics:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_geometric_mean_ignores_inf_and_nonpositive(self):
        assert geometric_mean([2.0, 8.0, math.inf, 0.0]) == pytest.approx(4.0)

    def test_geometric_mean_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))


class TestPrintTable:
    def test_renders_aligned_rows(self, capsys):
        print_table("demo", ["a", "bb"], [(1, 2.5), ("xyz", math.inf)])
        out = capsys.readouterr().out
        assert "=== demo ===" in out
        assert "2.50" in out
        assert "inf" in out
        assert "xyz" in out


class TestBenchRowProducers:
    """The row-producing functions each bench's main() uses."""

    def test_label_sizes_rows(self):
        from benchmarks.bench_label_sizes import label_bits_vs_f, label_bits_vs_n

        rows = label_bits_vs_f(n=48, f_values=(1, 4))
        assert len(rows) == 2 and rows[0][1] < rows[1][1]
        rows = label_bits_vs_n(f=2, n_values=(16, 32))
        assert rows[0][2] < rows[1][2]  # CS edge bits grow with n

    def test_lower_bound_rows(self):
        from benchmarks.bench_lower_bound import lower_bound_rows

        rows = lower_bound_rows(f_values=(1,), path_length=4, trials=200)
        f, analytic, simulated, ours = rows[0]
        assert analytic == 2.0
        assert 1.0 <= simulated <= 3.0
        assert ours < math.inf

    def test_tree_cover_quality(self):
        from benchmarks.bench_tree_cover import cover_quality

        g = workload_graph("grid", 25, seed=1)
        q = cover_quality(g, 2.0, 2)
        assert q["covered"]
        assert q["clusters"] >= 1
