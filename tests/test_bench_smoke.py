"""Perf smoke tests against the committed baselines.

Marked ``bench_smoke`` and excluded from the default pytest run (see
pytest.ini): wall-clock assertions only make sense on a quiet machine.
Run explicitly with ``pytest -m bench_smoke`` or via
``benchmarks/run_baseline.sh``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks import (
    baseline,
    bench_obs,
    bench_query_throughput,
    bench_routing,
    bench_scale,
    bench_server,
    bench_serving,
    bench_snapshot,
)


@pytest.mark.bench_smoke
def test_construction_within_2x_of_committed_baseline():
    if not Path(baseline.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_construction.json")
    committed = json.loads(Path(baseline.DEFAULT_OUT).read_text())
    problems = baseline.check_against(committed, repeats=3)
    assert not problems, "; ".join(problems)


@pytest.mark.bench_smoke
def test_decode_throughput_within_2x_of_committed_baseline():
    if not Path(bench_query_throughput.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_query.json")
    committed = json.loads(Path(bench_query_throughput.DEFAULT_OUT).read_text())
    problems = bench_query_throughput.check_against(committed, repeats=3)
    assert not problems, "; ".join(problems)


@pytest.mark.bench_smoke
def test_serving_throughput_within_2x_of_committed_baseline():
    if not Path(bench_serving.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_serving.json")
    committed = json.loads(Path(bench_serving.DEFAULT_OUT).read_text())
    problems = bench_serving.check_against(committed, repeats=3)
    assert not problems, "; ".join(problems)


@pytest.mark.bench_smoke
def test_routing_throughput_within_2x_of_committed_baseline():
    if not Path(bench_routing.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_routing.json")
    committed = json.loads(Path(bench_routing.DEFAULT_OUT).read_text())
    problems = bench_routing.check_against(committed, repeats=3)
    assert not problems, "; ".join(problems)


@pytest.mark.bench_smoke
def test_scale_fingerprints_match_committed_baseline():
    if not Path(bench_scale.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_scale.json")
    committed = json.loads(Path(bench_scale.DEFAULT_OUT).read_text())
    problems = bench_scale.check_against(committed, repeats=3)
    assert not problems, "; ".join(problems)


@pytest.mark.bench_smoke
def test_scale_10k_label_bits_and_digest_unchanged():
    """The n=10^4 scale workload is fully deterministic: label sizes and
    the snapshot's SHA-256 must match the committed row bit-for-bit."""
    if not Path(bench_scale.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_scale.json")
    committed = json.loads(Path(bench_scale.DEFAULT_OUT).read_text())
    recorded = committed.get("workloads", {}).get("random-10k")
    if not recorded or "snapshot_sha256" not in recorded:
        pytest.skip("no committed random-10k digest")
    row = bench_scale.measure_workload(
        "random-10k", "random", 10_000, None, trials=8
    )
    assert row["query_mismatches"] == 0
    for key in (
        "hash_family",
        "vertex_label_bits",
        "edge_label_bits",
        "snapshot_bytes",
        "snapshot_sha256",
    ):
        assert row[key] == recorded[key], key


@pytest.mark.bench_smoke
def test_snapshot_load_within_2x_of_committed_baseline():
    if not Path(bench_snapshot.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_snapshot.json")
    committed = json.loads(Path(bench_snapshot.DEFAULT_OUT).read_text())
    problems = bench_snapshot.check_against(committed, repeats=3)
    assert not problems, "; ".join(problems)


@pytest.mark.bench_smoke
def test_obs_overhead_within_hard_bar():
    """Observability: metrics-on serving throughput within the 5% hard
    bar of metrics-off (absolute, machine-normalized — both arms are
    measured interleaved in one run)."""
    if not Path(bench_obs.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_obs.json")
    committed = json.loads(Path(bench_obs.DEFAULT_OUT).read_text())
    problems = bench_obs.check_against(committed, repeats=5)
    assert not problems, "; ".join(problems)


@pytest.mark.bench_smoke
def test_server_within_2x_of_committed_baseline():
    """Socket tier: machine-normalized (socket qps / in-process qps)
    ratio within 2x of the committed one, and zero requests failed
    during the hot reload."""
    if not Path(bench_server.DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_server.json")
    committed = json.loads(Path(bench_server.DEFAULT_OUT).read_text())
    problems = bench_server.check_against(committed, repeats=3)
    assert not problems, "; ".join(problems)
