"""Construction-time smoke test against the committed baseline.

Marked ``bench_smoke`` and excluded from the default pytest run (see
pytest.ini): wall-clock assertions only make sense on a quiet machine.
Run explicitly with ``pytest -m bench_smoke`` or via
``benchmarks/run_baseline.sh``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.baseline import DEFAULT_OUT, check_against


@pytest.mark.bench_smoke
def test_construction_within_2x_of_committed_baseline():
    if not Path(DEFAULT_OUT).exists():
        pytest.skip("no committed BENCH_construction.json")
    committed = json.loads(Path(DEFAULT_OUT).read_text())
    problems = check_against(committed, repeats=3)
    assert not problems, "; ".join(problems)
