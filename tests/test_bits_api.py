"""Tests for bit accounting helpers and the high-level API facades."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import FaultTolerantConnectivity, FaultTolerantDistance
from repro.graph import generators
from repro.oracles import ConnectivityOracle, DistanceOracle
from repro.sizing.bits import (
    BitReader,
    BitWriter,
    bits_for_count,
    bits_for_id,
    bits_for_weight_scales,
)


class TestBitHelpers:
    def test_bits_for_count(self):
        assert bits_for_count(0) == 1
        assert bits_for_count(1) == 1
        assert bits_for_count(2) == 2
        assert bits_for_count(255) == 8
        assert bits_for_count(256) == 9

    def test_bits_for_id(self):
        assert bits_for_id(2) == 1
        assert bits_for_id(1024) == 10

    def test_bits_for_weight_scales(self):
        assert bits_for_weight_scales(16, 1.0) == 4
        assert bits_for_weight_scales(16, 16.0) == 8


class TestBitCodec:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(1, 24)), max_size=10))
    def test_writer_reader_roundtrip(self, fields):
        writer = BitWriter()
        expected = []
        for value, width in fields:
            value %= 1 << width
            writer.write(value, width)
            expected.append((value, width))
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        for value, width in expected:
            assert reader.read(width) == value
        assert reader.remaining == 0

    def test_write_overflow_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(4, 2)

    def test_read_past_end_rejected(self):
        writer = BitWriter().write(1, 1)
        reader = BitReader(writer.to_bytes(), 1)
        reader.read(1)
        with pytest.raises(ValueError):
            reader.read(1)

    def test_from_int(self):
        writer = BitWriter().write(5, 3).write(2, 2)
        reader = BitReader.from_int(writer.to_int(), writer.bit_length)
        assert reader.read(3) == 5
        assert reader.read(2) == 2


class TestConnectivityFacade:
    def test_auto_picks_cycle_space_for_small_f(self):
        g = generators.random_connected_graph(30, extra_edges=30, seed=1)
        api = FaultTolerantConnectivity(g, f=2)
        assert api.scheme_name == "cycle_space"

    def test_auto_picks_sketch_for_large_f(self):
        g = generators.random_connected_graph(30, extra_edges=30, seed=1)
        api = FaultTolerantConnectivity(g, f=100)
        assert api.scheme_name == "sketch"

    def test_unknown_scheme_rejected(self):
        g = generators.cycle_graph(5)
        with pytest.raises(ValueError):
            FaultTolerantConnectivity(g, f=1, scheme="quantum")

    def test_both_schemes_answer_correctly(self):
        import random

        g = generators.random_connected_graph(26, extra_edges=32, seed=2)
        oracle = ConnectivityOracle(g)
        rnd = random.Random(7)
        for scheme in ("cycle_space", "sketch"):
            api = FaultTolerantConnectivity(g, f=3, scheme=scheme, seed=5)
            for _ in range(25):
                s, t = rnd.sample(range(g.n), 2)
                faults = rnd.sample(range(g.m), rnd.randint(0, 3))
                assert api.connected(s, t, faults) == oracle.connected(s, t, faults)

    def test_cycle_space_enforces_fault_bound(self):
        g = generators.random_connected_graph(20, extra_edges=25, seed=3)
        api = FaultTolerantConnectivity(g, f=1, scheme="cycle_space")
        with pytest.raises(ValueError):
            api.connected(0, 1, [0, 1, 2])

    def test_size_reports(self):
        g = generators.random_connected_graph(20, extra_edges=25, seed=3)
        api = FaultTolerantConnectivity(g, f=2, scheme="cycle_space")
        assert api.max_edge_label_bits() > api.max_vertex_label_bits() > 0


class TestDistanceFacade:
    def test_estimates_within_bounds(self):
        import random

        g = generators.random_connected_graph(24, extra_edges=30, seed=4)
        api = FaultTolerantDistance(g, f=2, k=2, seed=6)
        oracle = DistanceOracle(g)
        rnd = random.Random(8)
        for _ in range(25):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), rnd.randint(0, 2))
            est = api.estimate(s, t, faults)
            true = oracle.distance(s, t, faults)
            if math.isinf(true):
                assert math.isinf(est)
            else:
                assert true - 1e-9 <= est <= api.stretch_bound(len(faults)) * true + 1e-9

    def test_label_access(self):
        g = generators.grid_graph(4, 4)
        api = FaultTolerantDistance(g, f=1, k=2)
        assert api.vertex_label(0).bit_length() > 0
        assert api.edge_label(0).bit_length() > 0
        assert api.max_vertex_label_bits() > 0
