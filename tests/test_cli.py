"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_sizes(self, capsys):
        assert main(["info", "--n", "32", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "connectivity[cycle_space]" in out
        assert "connectivity[sketch]" in out
        assert "distance[k=2]" in out

    def test_info_families(self, capsys):
        for family in ("grid", "ring_of_cliques"):
            assert main(["info", "--family", family, "--n", "25", "--f", "1"]) == 0

    def test_unknown_family_exits(self):
        with pytest.raises(SystemExit):
            main(["info", "--family", "mystery"])


class TestQuery:
    def test_connected_query(self, capsys):
        code = main(
            ["query", "--n", "32", "--s", "0", "--t", "10", "--faults", "1,2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "connected(0, 10" in out

    def test_empty_fault_list(self, capsys):
        assert main(["query", "--n", "24", "--s", "0", "--t", "5"]) == 0
        assert "distance estimate" in capsys.readouterr().out


class TestRoute:
    def test_route_delivers(self, capsys):
        code = main(
            ["route", "--n", "25", "--family", "grid",
             "--s", "0", "--t", "24", "--faults", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out
        assert "reversals" in out

    def test_route_simple_tables(self, capsys):
        code = main(
            ["route", "--n", "16", "--family", "grid", "--s", "0", "--t", "15",
             "--tables", "simple"]
        )
        assert code == 0

    def test_route_undelivered_exit_code(self, capsys):
        # Isolate vertex 0 of a 2x2-ish grid by failing its two edges.
        code = main(
            ["route", "--n", "16", "--family", "grid", "--s", "0", "--t", "15",
             "--faults", "0,1", "--f", "2"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "UNDELIVERED" in out


class TestLowerBound:
    def test_series(self, capsys):
        assert main(["lower-bound", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out
        assert out.count("\n") >= 3


class TestBuildServe:
    """The build/serve split: `build` writes a snapshot, `serve-bench
    --snapshot` / `traffic --snapshot` answer off it."""

    def test_build_then_serve_bench_round_trip(self, tmp_path, capsys):
        snap = str(tmp_path / "sketch.snap")
        assert main(["build", "--n", "48", "--out", snap]) == 0
        out = capsys.readouterr().out
        assert "saved + verified" in out
        code = main(
            ["serve-bench", "--n", "48", "--queries", "200",
             "--fault-sets", "4", "--chunk", "16", "--snapshot", snap]
        )
        assert code == 0
        out = capsys.readouterr().out
        # the command cross-checks the loaded scheme against a fresh
        # in-process construction, bit for bit (paths included)
        assert "snapshot answers match in-process construction" in out

    def test_build_then_traffic_round_trip(self, tmp_path, capsys):
        snap = str(tmp_path / "router.snap")
        assert main(
            ["build", "--n", "16", "--family", "grid", "--artifact", "router",
             "--f", "2", "--out", snap]
        ) == 0
        capsys.readouterr()
        code = main(
            ["traffic", "--n", "16", "--family", "grid", "--epochs", "3",
             "--messages-per-epoch", "6", "--snapshot", snap, "--validate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded router snapshot" in out
        assert "oracle-validated" in out

    def test_serve_bench_rejects_wrong_artifact(self, tmp_path, capsys):
        snap = str(tmp_path / "router.snap")
        assert main(
            ["build", "--n", "16", "--family", "grid", "--artifact", "router",
             "--out", snap]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="holds a"):
            main(["serve-bench", "--n", "16", "--family", "grid",
                  "--snapshot", snap])

    def test_serve_bench_rejects_mismatched_graph(self, tmp_path, capsys):
        snap = str(tmp_path / "sketch.snap")
        assert main(["build", "--n", "48", "--out", snap]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="does not match"):
            main(["serve-bench", "--n", "32", "--snapshot", snap])

    def test_traffic_rejects_mismatched_graph(self, tmp_path, capsys):
        snap = str(tmp_path / "router.snap")
        assert main(
            ["build", "--n", "16", "--family", "grid", "--artifact", "router",
             "--out", snap]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="does not match"):
            main(["traffic", "--n", "64", "--snapshot", snap])
