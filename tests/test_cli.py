"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_sizes(self, capsys):
        assert main(["info", "--n", "32", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "connectivity[cycle_space]" in out
        assert "connectivity[sketch]" in out
        assert "distance[k=2]" in out

    def test_info_families(self, capsys):
        for family in ("grid", "ring_of_cliques"):
            assert main(["info", "--family", family, "--n", "25", "--f", "1"]) == 0

    def test_unknown_family_exits(self):
        with pytest.raises(SystemExit):
            main(["info", "--family", "mystery"])


class TestQuery:
    def test_connected_query(self, capsys):
        code = main(
            ["query", "--n", "32", "--s", "0", "--t", "10", "--faults", "1,2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "connected(0, 10" in out

    def test_empty_fault_list(self, capsys):
        assert main(["query", "--n", "24", "--s", "0", "--t", "5"]) == 0
        assert "distance estimate" in capsys.readouterr().out


class TestRoute:
    def test_route_delivers(self, capsys):
        code = main(
            ["route", "--n", "25", "--family", "grid",
             "--s", "0", "--t", "24", "--faults", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out
        assert "reversals" in out

    def test_route_simple_tables(self, capsys):
        code = main(
            ["route", "--n", "16", "--family", "grid", "--s", "0", "--t", "15",
             "--tables", "simple"]
        )
        assert code == 0

    def test_route_undelivered_exit_code(self, capsys):
        # Isolate vertex 0 of a 2x2-ish grid by failing its two edges.
        code = main(
            ["route", "--n", "16", "--family", "grid", "--s", "0", "--t", "15",
             "--faults", "0,1", "--f", "2"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "UNDELIVERED" in out


class TestLowerBound:
    def test_series(self, capsys):
        assert main(["lower-bound", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out
        assert out.count("\n") >= 3
