"""Tests for the byte-level label codecs (honest-size verification)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.graph import generators
from repro.graph.ancestry import AncestryLabeling
from repro.graph.spanning_tree import RootedTree
from repro.sizing import codecs


@pytest.fixture
def scheme_and_params():
    g = generators.random_connected_graph(30, extra_edges=35, seed=3)
    scheme = CycleSpaceConnectivityScheme(g, f=3, seed=4)
    params = codecs.CodecParams(n=g.n, b=scheme.b, max_components=0)
    return g, scheme, params


class TestAncestryCodec:
    def test_roundtrip(self):
        g = generators.random_tree(25, seed=1)
        tree = RootedTree.bfs(g, root=0)
        anc = AncestryLabeling(tree)
        params = codecs.CodecParams(n=g.n)
        for v in range(g.n):
            lab = anc.label(v)
            assert codecs.decode_ancestry(
                codecs.encode_ancestry(lab, params), params
            ) == lab

    def test_encoded_size_matches_accounting(self):
        params = codecs.CodecParams(n=100)
        lab = (3, 198)
        data = codecs.encode_ancestry(lab, params)
        assert len(data) == (codecs.ancestry_bits(params) + 7) // 8
        assert codecs.ancestry_bits(params) == AncestryLabeling.bit_length(100)


class TestCycleSpaceCodecs:
    def test_vertex_roundtrip(self, scheme_and_params):
        g, scheme, params = scheme_and_params
        for v in range(g.n):
            lab = scheme.vertex_label(v)
            data = codecs.encode_cs_vertex(lab, params)
            back = codecs.decode_cs_vertex(data, params)
            assert back == lab

    def test_edge_roundtrip(self, scheme_and_params):
        g, scheme, params = scheme_and_params
        for e in g.edges:
            lab = scheme.edge_label(e.index)
            data = codecs.encode_cs_edge(lab, params)
            back = codecs.decode_cs_edge(data, params)
            assert back == lab

    def test_decoding_from_serialized_labels(self, scheme_and_params):
        """The full pipeline works over the wire format."""
        import random

        from repro.oracles import ConnectivityOracle

        g, scheme, params = scheme_and_params
        oracle = ConnectivityOracle(g)
        rnd = random.Random(9)
        for _ in range(20):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), rnd.randint(0, 3))
            sl = codecs.decode_cs_vertex(
                codecs.encode_cs_vertex(scheme.vertex_label(s), params), params
            )
            tl = codecs.decode_cs_vertex(
                codecs.encode_cs_vertex(scheme.vertex_label(t), params), params
            )
            fl = [
                codecs.decode_cs_edge(
                    codecs.encode_cs_edge(scheme.edge_label(ei), params), params
                )
                for ei in faults
            ]
            assert scheme.decode(sl, tl, fl).connected == oracle.connected(
                s, t, faults
            )

    def test_edge_size_matches_accounting(self, scheme_and_params):
        g, scheme, params = scheme_and_params
        lab = scheme.edge_label(0)
        data = codecs.encode_cs_edge(lab, params)
        counted = codecs.cs_edge_bits(params)
        assert len(data) == (counted + 7) // 8
        # The scheme's own accounting and the codec agree up to the
        # component-id field width.
        assert abs(lab.bit_length() - counted) <= 2

    def test_width_mismatch_rejected(self, scheme_and_params):
        g, scheme, params = scheme_and_params
        wrong = codecs.CodecParams(n=g.n, b=params.b + 1)
        with pytest.raises(ValueError):
            codecs.encode_cs_edge(scheme.edge_label(0), wrong)


class TestSketchArrayCodec:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 6), st.integers(1, 4), st.integers(0, 10**9))
    def test_roundtrip(self, a, b, c, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(0, 2**63, size=(a, b, c), dtype=np.uint64)
        data = codecs.encode_sketch_array(arr)
        assert len(data) == arr.size * 8
        back = codecs.decode_sketch_array(data, arr.shape)
        assert (back == arr).all()


class TestAllQueriesVariant:
    def test_wider_labels(self):
        g = generators.random_connected_graph(32, extra_edges=40, seed=5)
        per_query = CycleSpaceConnectivityScheme(g, f=4, seed=6)
        all_q = CycleSpaceConnectivityScheme(g, f=4, seed=6, all_queries=True)
        assert all_q.b > per_query.b
        assert all_q.b == (4 + 4) * 5  # (f + c_log) * ceil(log2 32)

    def test_still_correct(self):
        import random

        from repro.oracles import ConnectivityOracle

        g = generators.random_connected_graph(28, extra_edges=32, seed=7)
        scheme = CycleSpaceConnectivityScheme(g, f=3, seed=8, all_queries=True)
        oracle = ConnectivityOracle(g)
        rnd = random.Random(10)
        for _ in range(40):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), rnd.randint(0, 3))
            assert scheme.query(s, t, faults) == oracle.connected(s, t, faults)
