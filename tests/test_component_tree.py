"""Tests for component-tree identification (Claim 3.14, Figure 2)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.component_tree import ComponentForest, orient_tree_edge
from repro.graph import generators
from repro.graph.ancestry import AncestryLabeling
from repro.graph.components import connected_components
from repro.graph.spanning_tree import RootedTree


def _random_tree_faults(n, num_faults, seed):
    g = generators.random_tree(n, seed=seed)
    tree = RootedTree.bfs(g, root=0)
    anc = AncestryLabeling(tree)
    rnd = random.Random(seed + 1)
    faults = rnd.sample(range(g.m), min(num_faults, g.m))
    return g, tree, anc, faults


def _expected_components(g, tree, faults):
    labels, _ = connected_components(g, faults)
    return labels


class TestOrientation:
    def test_orient_tree_edge(self):
        g = generators.random_tree(15, seed=2)
        tree = RootedTree.bfs(g, root=0)
        anc = AncestryLabeling(tree)
        for e in g.edges:
            child = tree.child_endpoint(e.index)
            parent = tree.parent[child]
            c, p = orient_tree_edge(anc.label(e.u), anc.label(e.v))
            assert c == anc.label(child)
            assert p == anc.label(parent)

    def test_orient_rejects_unrelated(self):
        import pytest

        with pytest.raises(ValueError):
            orient_tree_edge((2, 3), (5, 6))


class TestBuildEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(4, 40), st.integers(0, 8), st.integers(0, 500))
    def test_fast_matches_bruteforce(self, n, num_faults, seed):
        g, tree, anc, faults = _random_tree_faults(n, num_faults, seed)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        fast = ComponentForest.build(children)
        brute = ComponentForest.build_bruteforce(children)
        assert [c.parent for c in fast.components] == [
            c.parent for c in brute.components
        ]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(4, 40), st.integers(0, 8), st.integers(0, 500))
    def test_locate_matches_linear(self, n, num_faults, seed):
        g, tree, anc, faults = _random_tree_faults(n, num_faults, seed)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        forest = ComponentForest.build(children)
        for v in range(n):
            lab = anc.label(v)
            assert forest.locate(lab) == forest.locate_linear(lab)


class TestAgainstTrueComponents:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(4, 40), st.integers(0, 8), st.integers(0, 500))
    def test_locate_agrees_with_real_components(self, n, num_faults, seed):
        """Two vertices share a T\\F component iff locate() agrees."""
        g, tree, anc, faults = _random_tree_faults(n, num_faults, seed)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        forest = ComponentForest.build(children)
        true_labels = _expected_components(g, tree, faults)
        located = [forest.locate(anc.label(v)) for v in range(n)]
        for u in range(n):
            for v in range(u + 1, n):
                assert (located[u] == located[v]) == (
                    true_labels[u] == true_labels[v]
                )

    def test_component_count(self):
        g, tree, anc, faults = _random_tree_faults(30, 5, seed=7)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        forest = ComponentForest.build(children)
        assert len(forest) == len(set(faults)) + 1


class TestStructure:
    def test_root_component_is_zero(self):
        g, tree, anc, faults = _random_tree_faults(20, 4, seed=9)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        forest = ComponentForest.build(children)
        assert forest.components[0].parent == -1
        assert forest.locate(anc.label(tree.root)) == 0

    def test_refs_are_preserved(self):
        g, tree, anc, faults = _random_tree_faults(20, 4, seed=10)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        forest = ComponentForest.build(children, refs=list(range(len(faults))))
        refs = [c.ref for c in forest.components[1:]]
        assert sorted(refs) == list(range(len(faults)))

    def test_component_tree_edges_match_parents(self):
        g, tree, anc, faults = _random_tree_faults(25, 6, seed=11)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        forest = ComponentForest.build(children)
        for child_c, parent_c in forest.edges():
            assert forest.components[child_c].parent == parent_c

    def test_empty_fault_set(self):
        forest = ComponentForest.build([])
        assert len(forest) == 1
        assert forest.locate((5, 6)) == 0

    def test_children_of(self):
        g, tree, anc, faults = _random_tree_faults(25, 5, seed=12)
        children = [anc.label(tree.child_endpoint(ei)) for ei in faults]
        forest = ComponentForest.build(children)
        for j in range(len(forest)):
            for c in forest.children_of(j):
                assert forest.components[c].parent == j
