"""Tests for connected components and the exact oracles, cross-checked
against networkx (an independent implementation)."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.graph import generators
from repro.graph.components import connected_components, is_connected
from repro.oracles import ConnectivityOracle, DistanceOracle
from repro.oracles.distances import shortest_path, shortest_path_distance
from tests.conftest import graphs_with_queries


def _to_nx(g, faults=()):
    skip = set(faults)
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    for e in g.edges:
        if e.index not in skip:
            h.add_edge(e.u, e.v, weight=e.weight)
    return h


class TestComponents:
    @settings(max_examples=30, deadline=None)
    @given(graphs_with_queries(max_faults=5))
    def test_component_count_matches_networkx(self, data):
        g, _, _, faults = data
        labels, count = connected_components(g, faults)
        assert count == nx.number_connected_components(_to_nx(g, faults))
        assert len(set(labels)) == count

    def test_component_labels_are_consistent(self):
        g = generators.cycle_graph(8)
        labels, count = connected_components(g, [0, 4])
        assert count == 2
        for e in g.edges:
            if e.index not in (0, 4):
                assert labels[e.u] == labels[e.v]

    def test_is_connected_trivial(self):
        from repro.graph.graph import Graph

        assert is_connected(Graph(0))
        assert is_connected(Graph(1))
        assert not is_connected(Graph(2))


class TestConnectivityOracle:
    @settings(max_examples=30, deadline=None)
    @given(graphs_with_queries(max_faults=5))
    def test_matches_networkx(self, data):
        g, s, t, faults = data
        oracle = ConnectivityOracle(g)
        expected = nx.has_path(_to_nx(g, faults), s, t)
        assert oracle.connected(s, t, faults) == expected

    def test_component_of(self, small_connected):
        oracle = ConnectivityOracle(small_connected)
        comp = oracle.component_of(0)
        assert comp == set(range(small_connected.n))

    def test_is_induced_edge_cut_positive(self):
        g = generators.grid_graph(3, 3)
        # delta(S) for S = left column {0, 3, 6}.
        s_side = {0, 3, 6}
        cut = [
            e.index
            for e in g.edges
            if (e.u in s_side) != (e.v in s_side)
        ]
        assert ConnectivityOracle(g).is_induced_edge_cut(cut)

    def test_is_induced_edge_cut_negative(self):
        g = generators.grid_graph(3, 3)
        # A single internal edge of a cycle is not an induced cut.
        assert not ConnectivityOracle(g).is_induced_edge_cut([0])

    def test_empty_set_is_induced_cut(self, small_connected):
        assert ConnectivityOracle(small_connected).is_induced_edge_cut([])

    def test_random_cuts_verified_both_ways(self):
        rnd = random.Random(11)
        g = generators.random_connected_graph(16, extra_edges=20, seed=5)
        oracle = ConnectivityOracle(g)
        for _ in range(20):
            side = {v for v in range(g.n) if rnd.random() < 0.5}
            cut = [
                e.index for e in g.edges if (e.u in side) != (e.v in side)
            ]
            assert oracle.is_induced_edge_cut(cut)


class TestDistanceOracle:
    @settings(max_examples=30, deadline=None)
    @given(graphs_with_queries(max_faults=4))
    def test_distance_matches_networkx(self, data):
        g, s, t, faults = data
        h = _to_nx(g, faults)
        try:
            expected = nx.dijkstra_path_length(h, s, t)
        except nx.NetworkXNoPath:
            expected = math.inf
        got = shortest_path_distance(g, s, t, faults)
        assert got == pytest.approx(expected)

    def test_path_is_consistent_with_distance(self, weighted_graph):
        g = weighted_graph
        for s, t in [(0, 5), (3, 17), (1, 30)]:
            p = shortest_path(g, s, t)
            d = shortest_path_distance(g, s, t)
            total = 0.0
            for a, b in zip(p, p[1:]):
                total += g.weight(g.edge_index_between(a, b))
            assert total == pytest.approx(d)

    def test_path_none_when_disconnected(self):
        g = generators.cycle_graph(6)
        assert shortest_path(g, 0, 3, faults=[0, 3]) is None

    def test_ball(self, grid_6x6):
        oracle = DistanceOracle(grid_6x6)
        ball = oracle.ball(0, 2.0)
        assert set(ball) == {0, 1, 2, 6, 7, 12}

    def test_eccentricity(self, grid_6x6):
        oracle = DistanceOracle(grid_6x6)
        assert oracle.eccentricity(0) == 10.0  # opposite corner
        assert oracle.eccentricity(14) < 10.0  # interior vertex
