"""End-to-end equivalence: labels built through the CSR engine decode
identically to the seed (reference-engine) labels.

The acceptance bar for the CSR rewrite is bit-identical *labels* — not
just equal answers — because every construction quantity (ancestry
times, EIDs, sketch cells) is embedded into decodable identifiers.
Covers four generator families and the full query pipeline, plus the
batched EID/UID paths and the tree-cover engines.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro._util import derive_seed
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.graph.ancestry import AncestryLabeling
from repro.graph.spanning_tree import spanning_forest
from repro.sketches.edge_ids import ExtendedEdgeIds, UidScheme
from repro.sketches.sketch import eids_to_word_matrix, word_matrix_to_eids
from repro.trees.tree_cover import sparse_cover

FAMILIES = [
    ("random", lambda: generators.random_connected_graph(72, extra_edges=100, seed=21)),
    ("grid", lambda: generators.grid_graph(8, 8)),
    ("ring_of_cliques", lambda: generators.ring_of_cliques(8, 5)),
    (
        "weighted",
        lambda: generators.with_random_weights(
            generators.random_connected_graph(64, extra_edges=90, seed=22), 1, 8, seed=23
        ),
    ),
    # High-diameter: exercises the hybrid kernels' sequential fallbacks
    # (per-level BFS overhead and hop-deep balls).
    ("path", lambda: generators.grid_graph(1, 96)),
]


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_sketch_scheme_labels_identical_across_engines(name, make):
    graph = make()
    fast = SketchConnectivityScheme(graph, seed=5, copies=2)
    ref = SketchConnectivityScheme(graph, seed=5, copies=2, engine="reference")
    assert fast._eid_cache == ref._eid_cache
    for v in range(graph.n):
        assert fast.vertex_label(v) == ref.vertex_label(v)
    for ei in range(graph.m):
        a, b = fast.edge_label(ei), ref.edge_label(ei)
        assert (a.component, a.eid, a.is_tree) == (b.component, b.eid, b.is_tree)
        if a.is_tree:
            for c in range(2):
                assert np.array_equal(a.subtree[c], b.subtree[c])
                assert np.array_equal(a.global_sketch[c], b.global_sketch[c])
    assert fast.max_vertex_label_bits() == ref.max_vertex_label_bits()
    assert fast.max_edge_label_bits() == ref.max_edge_label_bits()


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_sketch_scheme_decodes_identical_across_engines(name, make):
    graph = make()
    fast = SketchConnectivityScheme(graph, seed=5)
    ref = SketchConnectivityScheme(graph, seed=5, engine="reference")
    rnd = random.Random(77)
    for _ in range(30):
        s, t = rnd.sample(range(graph.n), 2)
        faults = rnd.sample(range(graph.m), rnd.randint(0, 6))
        ra = fast.query(s, t, faults)
        rb = ref.query(s, t, faults)
        assert ra.connected == rb.connected
        assert ra.path == rb.path
        assert ra.phases_used == rb.phases_used


def test_eid_batches_match_per_edge_path():
    graph = generators.with_random_weights(
        generators.random_connected_graph(48, extra_edges=70, seed=31), 1, 5, seed=32
    )
    trees, comp = spanning_forest(graph)
    anc = [AncestryLabeling(t) for t in trees]
    eids = ExtendedEdgeIds(
        graph, UidScheme(derive_seed(9, "uid")), lambda v: anc[comp[v]].label(v)
    )
    per_edge = [eids.eid(ei) for ei in range(graph.m)]
    assert eids.eid_batch() == per_edge
    words = eids.eid_words_batch()
    assert word_matrix_to_eids(words) == per_edge
    assert np.array_equal(words, eids_to_word_matrix(per_edge, words.shape[1]))
    # Restricted batches keep row order aligned with the index list.
    subset = list(range(0, graph.m, 3))
    assert eids.eid_batch(subset) == [per_edge[i] for i in subset]


def test_uid_batch_matches_uid():
    scheme = UidScheme(derive_seed(4, "uid"))
    pairs = [(3, 9), (9, 3), (0, 1), (120, 7), (2**20, 2**21)]
    assert scheme.uid_batch(pairs) == [scheme.uid(u, v) for u, v in pairs]


def test_vertex_sketch_builders_agree():
    from repro.core.sketch_scheme import default_units
    from repro.sketches.hashing import PairwiseHashFamily
    from repro.sketches.sketch import SketchDims, VertexSketches

    graph = generators.random_connected_graph(40, extra_edges=55, seed=41)
    trees, comp = spanning_forest(graph)
    anc = [AncestryLabeling(t) for t in trees]
    eids = ExtendedEdgeIds(
        graph, UidScheme(derive_seed(1, "uid")), lambda v: anc[comp[v]].label(v)
    )
    import math

    levels = max(1, math.ceil(math.log2(max(graph.m, 2)))) + 1
    dims = SketchDims(
        units=default_units(graph.n),
        levels=levels,
        words=max(1, (eids.total_bits + 63) // 64),
    )
    fam = PairwiseHashFamily(dims.units, levels - 1, derive_seed(1, "fam"))
    sketcher = VertexSketches(graph, dims, fam)
    cache = [eids.eid(ei) for ei in range(graph.m)]
    ref = sketcher.build_reference(cache.__getitem__)
    fast = sketcher.build(cache.__getitem__)
    assert np.array_equal(fast, ref)
    # Restricted edge set
    subset = list(range(0, graph.m, 2))
    ref_sub = sketcher.build_reference(cache.__getitem__, subset)
    fast_sub = sketcher.build(cache.__getitem__, subset)
    assert np.array_equal(fast_sub, ref_sub)
    # Prefix tensor: interval XOR + level suffix == subtree aggregation.
    tree = trees[0]
    arr = tree.arrays()
    agg_ref = VertexSketches.aggregate_subtrees_reference(tree, ref)
    pre = np.full(graph.n, -1, dtype=np.int64)
    pre[arr.order] = np.arange(arr.order.size)
    prefix = sketcher.build_prefix(
        eids.eid_words_batch(), row_of=pre + 1, rows=graph.n + 1
    )
    for v in tree.vertices:
        a = int(pre[v])
        b = a + int(arr.size[v])
        got = VertexSketches.suffix_levels(prefix[b] ^ prefix[a])
        assert np.array_equal(got, agg_ref[v]), v
    # The layered kernel agrees too.
    assert np.array_equal(VertexSketches.aggregate_subtrees(tree, ref), agg_ref)


def test_sparse_cover_engines_agree():
    for name, make in FAMILIES:
        graph = make()
        for rho in (1.0, 3.0, 9.0):
            a = sparse_cover(graph, rho, 2, forbidden_edges=range(0, graph.m, 7))
            b = sparse_cover(
                graph,
                rho,
                2,
                forbidden_edges=range(0, graph.m, 7),
                engine="reference",
            )
            assert a.home == b.home, (name, rho)
            assert [(t.center, t.vertices, t.radius) for t in a.trees] == [
                (t.center, t.vertices, t.radius) for t in b.trees
            ], (name, rho)


def test_routing_augmented_scheme_identical_across_engines():
    """Eq. (5) layout (ports + embedded tree labels) through both engines."""
    from repro.core.sketch_scheme import RoutingAugmentation
    from repro.graph.spanning_tree import RootedTree
    from repro.trees.tree_routing import TreeRoutingScheme

    graph = generators.random_connected_graph(36, extra_edges=50, seed=51)
    tree = RootedTree.bfs(graph, 0)
    tr = TreeRoutingScheme(tree)
    aug = RoutingAugmentation(
        port_bits=max(1, (graph.n - 1).bit_length()),
        tlabel_bits=tr.encoded_label_bits(),
        tlabel_of=lambda v: tr.encode_label(tr.label(v)),
    )
    fast = SketchConnectivityScheme(graph, seed=6, routing=aug, trees=[tree])
    ref = SketchConnectivityScheme(
        graph, seed=6, routing=aug, trees=[tree], engine="reference"
    )
    assert fast._eid_cache == ref._eid_cache
    for ei in range(graph.m):
        a, b = fast.edge_label(ei), ref.edge_label(ei)
        assert a.eid == b.eid and a.is_tree == b.is_tree
        if a.is_tree:
            assert np.array_equal(a.subtree[0], b.subtree[0])
