"""Property tests: the CSR array kernels agree with the pure-Python
reference implementations on random generator workloads.

The CSR view and its kernels (``repro.graph.csr``) are the hot path of
label construction; the ``Graph`` builder and the sequential
implementations stay the correctness reference.  Everything here is
asserted *bit for bit* — same parents, same distances, same DFS times,
same XOR aggregates — because the labeling schemes embed these values
into decodable identifiers.
"""

from __future__ import annotations

import heapq
import math

import numpy as np
import pytest

from repro.graph import csr as csrk
from repro.graph import generators
from repro.graph.ancestry import AncestryLabeling
from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree, spanning_forest
from repro.sketches.edge_ids import EidCodec
from repro.trees.heavy_light import HeavyLightDecomposition


def _families(n_scale: int = 1):
    yield generators.random_connected_graph(40 * n_scale, extra_edges=60 * n_scale, seed=7)
    yield generators.grid_graph(6 * n_scale, 6 * n_scale)
    yield generators.grid_graph(1, 80 * n_scale)  # path: high diameter
    yield generators.ring_of_cliques(5 * n_scale, 5)
    yield generators.with_random_weights(
        generators.random_connected_graph(36 * n_scale, extra_edges=50 * n_scale, seed=8),
        1,
        8,
        seed=9,
    )
    yield generators.gnm_random_graph(30 * n_scale, 25 * n_scale, seed=10)


# ----------------------------------------------------------------------
# CSR structure
# ----------------------------------------------------------------------
def test_csr_view_matches_ports():
    for g in _families():
        csr = g.as_csr()
        assert csr.n == g.n and csr.m == g.m
        for u in g.vertices():
            lo, hi = int(csr.indptr[u]), int(csr.indptr[u + 1])
            assert hi - lo == g.degree(u)
            for port in range(g.degree(u)):
                v, ei = g.via_port(u, port)
                assert int(csr.neighbors[lo + port]) == v
                assert int(csr.edge_ids[lo + port]) == ei
        for e in g.edges:
            assert int(csr.edge_u[e.index]) == e.u
            assert int(csr.edge_v[e.index]) == e.v
            assert float(csr.edge_weight[e.index]) == e.weight


def test_csr_cache_invalidated_by_add_edge():
    g = Graph(4)
    g.add_edge(0, 1)
    first = g.as_csr()
    assert g.as_csr() is first  # cached
    g.add_edge(1, 2)
    second = g.as_csr()
    assert second is not first
    assert second.m == 2


def test_csr_arrays_frozen():
    g = generators.random_connected_graph(10, extra_edges=5, seed=1)
    csr = g.as_csr()
    with pytest.raises(ValueError):
        csr.neighbors[0] = 3


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------
@pytest.mark.parametrize("forbidden", [(), (0, 3, 7)])
def test_bfs_tree_matches_python_bfs(forbidden):
    for g in _families():
        forb = tuple(f for f in forbidden if f < g.m)
        for root in (0, g.n // 2):
            ref = RootedTree.bfs(g, root, forb, engine="reference")
            got = RootedTree.bfs(g, root, forb, engine="csr")
            assert got.parent == ref.parent
            assert got.parent_edge == ref.parent_edge
            assert got.vertices == ref.vertices
            assert got.depth == ref.depth


def test_bfs_accepts_index_array_as_forbidden():
    g = generators.random_connected_graph(20, extra_edges=15, seed=9)
    ref = RootedTree.bfs(g, 0, [0, 2], engine="reference")
    for forb in (np.array([0, 2]), (0, 2), {0, 2}):
        got = RootedTree.bfs(g, 0, forb, engine="csr")
        assert got.parent == ref.parent
        assert got.parent_edge == ref.parent_edge


def test_spanning_forest_engines_agree():
    for g in _families():
        f_ref, comp_ref = spanning_forest(g, forbidden=[1, 2], engine="reference")
        f_csr, comp_csr = spanning_forest(g, forbidden=[1, 2], engine="csr")
        assert comp_ref == list(comp_csr)
        assert len(f_ref) == len(f_csr)
        for ta, tb in zip(f_ref, f_csr):
            assert ta.root == tb.root
            assert ta.parent == tb.parent
            assert ta.parent_edge == tb.parent_edge


# ----------------------------------------------------------------------
# Batched truncated SSSP
# ----------------------------------------------------------------------
def _dijkstra_ref(g: Graph, s: int, radius=math.inf, skip=frozenset(), allowed=None):
    dist = {s: 0.0}
    heap = [(0.0, s)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for v, ei in g.incident(u):
            if ei in skip or (allowed is not None and v not in allowed):
                continue
            nd = d + g.weight(ei)
            if nd <= radius and nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def test_shortest_distances_match_dijkstra():
    for g in _families():
        csr = g.as_csr()
        dist = csrk.shortest_distances(csr, range(g.n))
        for s in range(0, g.n, 3):
            ref = _dijkstra_ref(g, s)
            got = {
                v: float(dist[s, v]) for v in range(g.n) if math.isfinite(dist[s, v])
            }
            assert got == ref


def test_shortest_distances_truncated_and_forbidden():
    for g in _families():
        skip = frozenset(range(0, g.m, 5))
        mask = csrk.forbidden_mask(g.m, skip)
        dist = csrk.shortest_distances(g.as_csr(), range(g.n), radius=4.0, forbidden=mask)
        for s in range(0, g.n, 4):
            ref = _dijkstra_ref(g, s, radius=4.0, skip=skip)
            got = {
                v: float(dist[s, v]) for v in range(g.n) if math.isfinite(dist[s, v])
            }
            assert got == ref


def test_shortest_distances_allowed_subset():
    g = generators.with_random_weights(
        generators.random_connected_graph(30, extra_edges=40, seed=3), 1, 6, seed=4
    )
    allowed_set = set(range(0, 20))
    allowed = np.zeros(g.n, dtype=bool)
    allowed[list(allowed_set)] = True
    dist = csrk.shortest_distances(g.as_csr(), [5], allowed=allowed)
    ref = _dijkstra_ref(g, 5, allowed=allowed_set)
    got = {v: float(dist[0, v]) for v in range(g.n) if math.isfinite(dist[0, v])}
    assert got == ref


def test_shortest_distances_empty_and_edgeless():
    g = Graph(3)
    dist = csrk.shortest_distances(g.as_csr(), [1])
    assert dist[0, 1] == 0.0
    assert math.isinf(dist[0, 0]) and math.isinf(dist[0, 2])
    assert csrk.shortest_distances(g.as_csr(), []).shape == (0, 3)


# ----------------------------------------------------------------------
# Tree kernels: sizes, DFS intervals, subtree XOR, heavy-light
# ----------------------------------------------------------------------
def _trees():
    for g in _families():
        yield RootedTree.bfs(g, 0)
        yield RootedTree.dfs(g, 0)
        if any(e.weight != 1.0 for e in g.edges):
            yield RootedTree.dijkstra(g, 0)


def test_subtree_sizes_match_subtree_vertices():
    for tree in _trees():
        arr = tree.arrays()
        for v in tree.vertices:
            assert int(arr.size[v]) == len(tree.subtree_vertices(v))


def test_ancestry_array_engine_matches_dfs_engine():
    for tree in _trees():
        ref = AncestryLabeling(tree, engine="reference")
        got = AncestryLabeling(tree, engine="csr")
        assert got.max_time == ref.max_time
        for v in tree.vertices:
            assert got.label(v) == ref.label(v)


def test_subtree_xor_matches_postorder_loop():
    rng = np.random.default_rng(11)
    for tree in _trees():
        n = tree.graph.n
        values = rng.integers(0, 2**63, size=(n, 3, 2), dtype=np.uint64)
        arr = tree.arrays()
        got = csrk.subtree_xor(arr.parent, arr.layers, values)
        ref = values.copy()
        for v in tree.post_order():
            p = tree.parent[v]
            if p >= 0:
                ref[p] ^= ref[v]
        assert np.array_equal(got, ref)


def test_heavy_light_matches_reference():
    for tree in _trees():
        hl = HeavyLightDecomposition(tree)
        # Reference recomputation with per-vertex loops.
        size = [0] * tree.graph.n
        for v in tree.post_order():
            size[v] = 1 + sum(size[c] for c in tree.children[v])
        assert hl.size == size
        for v in tree.vertices:
            best, best_size = -1, 0
            for c in tree.children[v]:
                if size[c] > best_size:
                    best, best_size = c, size[c]
            assert hl.heavy_child[v] == best
        for v in tree.vertices:
            p = tree.parent[v]
            expect = 0 if p < 0 else hl.light_depth[p] + (hl.heavy_child[p] != v)
            assert hl.light_depth[v] == expect


# ----------------------------------------------------------------------
# XOR scatter + word packing helpers
# ----------------------------------------------------------------------
def test_xor_scatter_folds_duplicates():
    rng = np.random.default_rng(5)
    acc = np.zeros((10, 4), dtype=np.uint64)
    idx = rng.integers(0, 10, size=50)
    vals = rng.integers(0, 2**63, size=(50, 4), dtype=np.uint64)
    csrk.xor_scatter(acc, idx, vals)
    ref = np.zeros_like(acc)
    for i, v in zip(idx, vals):
        ref[i] ^= v
    assert np.array_equal(acc, ref)


def test_pack_words_batch_matches_scalar_pack():
    from repro.sketches.sketch import eid_to_words

    codec = EidCodec([("a", 64), ("b", 11), ("c", 13), ("d", 40)])
    rng = np.random.default_rng(6)
    cols = {
        "a": rng.integers(0, 2**63, size=32, dtype=np.uint64),
        "b": rng.integers(0, 2**11, size=32, dtype=np.uint64),
        "c": rng.integers(0, 2**13, size=32, dtype=np.uint64),
        "d": rng.integers(0, 2**40, size=32, dtype=np.uint64),
    }
    words = codec.pack_words_batch(cols)
    for i in range(32):
        eid = codec.pack({k: int(cols[k][i]) for k in cols})
        assert np.array_equal(words[i], eid_to_words(eid, codec.word_count))
