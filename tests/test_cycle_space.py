"""Tests for cycle space sampling (Lemma 1.7, Appendix B)."""

import random

from hypothesis import given, settings

from repro.cycle_space.circulation import random_binary_circulation
from repro.cycle_space.labels import CycleSpaceLabels
from repro.graph import generators
from repro.graph.spanning_tree import RootedTree
from repro.oracles import ConnectivityOracle
from tests.conftest import connected_graphs


class TestCirculation:
    @settings(max_examples=25, deadline=None)
    @given(connected_graphs(max_n=20))
    def test_sampled_set_is_binary_circulation(self, g):
        tree = RootedTree.bfs(g, root=0)
        circ = random_binary_circulation(g, tree, seed=7)
        degree = [0] * g.n
        for ei in circ:
            e = g.edge(ei)
            degree[e.u] += 1
            degree[e.v] += 1
        assert all(d % 2 == 0 for d in degree)

    def test_different_seeds_give_different_circulations(self):
        g = generators.random_connected_graph(20, extra_edges=25, seed=1)
        tree = RootedTree.bfs(g, root=0)
        a = random_binary_circulation(g, tree, seed=1)
        b = random_binary_circulation(g, tree, seed=2)
        assert a != b

    def test_tree_only_graph_has_empty_circulation(self):
        g = generators.random_tree(15, seed=3)
        tree = RootedTree.bfs(g, root=0)
        assert random_binary_circulation(g, tree, seed=5) == set()


class TestCycleSpaceLabels:
    def _labels(self, g, b=24, seed=0):
        tree = RootedTree.bfs(g, root=0)
        return CycleSpaceLabels.build(g, tree, b, seed=seed), tree

    def test_induced_cuts_always_xor_to_zero(self):
        rnd = random.Random(13)
        g = generators.random_connected_graph(18, extra_edges=22, seed=4)
        labels, _ = self._labels(g)
        for _ in range(30):
            side = {v for v in range(g.n) if rnd.random() < 0.5}
            cut = [e.index for e in g.edges if (e.u in side) != (e.v in side)]
            assert labels.looks_like_induced_cut(cut)

    def test_non_cuts_rarely_xor_to_zero(self):
        rnd = random.Random(14)
        g = generators.random_connected_graph(18, extra_edges=22, seed=4)
        oracle = ConnectivityOracle(g)
        labels, _ = self._labels(g, b=32)
        false_positives = 0
        tested = 0
        for _ in range(200):
            size = rnd.randint(1, 4)
            subset = rnd.sample(range(g.m), size)
            if oracle.is_induced_edge_cut(subset):
                continue
            tested += 1
            if labels.looks_like_induced_cut(subset):
                false_positives += 1
        assert tested > 100
        assert false_positives == 0  # 2^-32 per test

    @settings(max_examples=15, deadline=None)
    @given(connected_graphs(max_n=14, max_extra=15))
    def test_lemma_1_7_exhaustive_small_subsets(self, g):
        """Both directions of Lemma 1.7 over all subsets of size <= 2."""
        oracle = ConnectivityOracle(g)
        labels, _ = self._labels(g, b=40)
        import itertools

        for size in (1, 2):
            for subset in itertools.combinations(range(g.m), size):
                is_cut = oracle.is_induced_edge_cut(subset)
                looks = labels.looks_like_induced_cut(subset)
                if is_cut:
                    assert looks
                else:
                    assert not looks  # whp; b=40 makes flakes ~1e-12

    def test_single_bridge_is_cut(self):
        g = generators.random_tree(12, seed=6)
        labels, _ = self._labels(g)
        for e in g.edges:  # every tree edge is a bridge = induced cut
            assert labels.looks_like_induced_cut([e.index])

    def test_label_width(self):
        g = generators.random_connected_graph(10, extra_edges=10, seed=1)
        labels, _ = self._labels(g, b=17)
        assert labels.bit_length() == 17
        for e in g.edges:
            assert labels.phi(e.index) < (1 << 17)

    def test_deterministic_given_seed(self):
        g = generators.random_connected_graph(12, extra_edges=12, seed=2)
        a, _ = self._labels(g, seed=9)
        b, _ = self._labels(g, seed=9)
        assert [a.phi(i) for i in range(g.m)] == [b.phi(i) for i in range(g.m)]

    def test_rejects_zero_width(self):
        import pytest

        g = generators.cycle_graph(4)
        tree = RootedTree.bfs(g, root=0)
        with pytest.raises(ValueError):
            CycleSpaceLabels.build(g, tree, 0)
