"""Tests for the Section 3.1 FT connectivity labeling scheme."""

import math
import random

from hypothesis import given, settings

from repro.core.cycle_space_scheme import (
    CycleSpaceConnectivityScheme,
    side_of_vertex,
)
from repro.graph import generators
from repro.graph.ancestry import AncestryLabeling
from repro.graph.spanning_tree import RootedTree
from repro.oracles import ConnectivityOracle
from tests.conftest import graphs_with_queries, random_fault_sets


class TestDecodeCorrectness:
    @settings(max_examples=40, deadline=None)
    @given(graphs_with_queries(max_faults=4, max_n=18))
    def test_matches_oracle(self, data):
        g, s, t, faults = data
        scheme = CycleSpaceConnectivityScheme(g, f=4, seed=3)
        oracle = ConnectivityOracle(g)
        assert scheme.query(s, t, faults) == oracle.connected(s, t, faults)

    def test_many_random_queries_on_one_graph(self):
        g = generators.random_connected_graph(40, extra_edges=55, seed=8)
        scheme = CycleSpaceConnectivityScheme(g, f=5, seed=2)
        oracle = ConnectivityOracle(g)
        rnd = random.Random(21)
        for faults in random_fault_sets(g, 120, 5, seed=22):
            s, t = rnd.sample(range(g.n), 2)
            assert scheme.query(s, t, faults) == oracle.connected(s, t, faults)

    def test_bridge_cut_detected(self):
        g = generators.random_tree(20, seed=5)
        scheme = CycleSpaceConnectivityScheme(g, f=2, seed=1)
        tree = scheme.trees[0]
        for v in range(1, 20):
            ei = tree.parent_edge[v]
            # Removing v's parent edge separates v from the root.
            assert not scheme.query(0, v, [ei])

    def test_s_equals_t(self, small_connected):
        scheme = CycleSpaceConnectivityScheme(small_connected, f=3)
        assert scheme.query(5, 5, [0, 1, 2])

    def test_empty_fault_set(self, small_connected):
        scheme = CycleSpaceConnectivityScheme(small_connected, f=3)
        assert scheme.query(0, small_connected.n - 1, [])

    def test_duplicate_fault_labels_are_deduplicated(self):
        g = generators.cycle_graph(8)
        scheme = CycleSpaceConnectivityScheme(g, f=4, seed=3)
        oracle = ConnectivityOracle(g)
        # Passing the same cut edge twice must not XOR it away.
        assert scheme.query(0, 4, [0, 0, 4, 4]) == oracle.connected(0, 4, [0, 4])

    def test_disconnected_graph_components(self):
        from repro.graph.graph import Graph

        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        scheme = CycleSpaceConnectivityScheme(g, f=2)
        assert not scheme.query(0, 3, [])
        assert scheme.query(0, 2, [])
        assert not scheme.query(0, 2, [0])


class TestFastVsBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(graphs_with_queries(max_faults=4, max_n=14))
    def test_decoders_agree(self, data):
        g, s, t, faults = data
        scheme = CycleSpaceConnectivityScheme(g, f=4, seed=6)
        sl, tl = scheme.vertex_label(s), scheme.vertex_label(t)
        fl = [scheme.edge_label(ei) for ei in faults]
        fast = scheme.decode(sl, tl, fl)
        brute = scheme.decode_bruteforce(sl, tl, fl)
        assert fast.connected == brute.connected


class TestCutWitness:
    def test_witness_is_disconnecting_cut(self):
        g = generators.random_connected_graph(24, extra_edges=4, seed=9)
        scheme = CycleSpaceConnectivityScheme(g, f=4, seed=4)
        oracle = ConnectivityOracle(g)
        rnd = random.Random(31)
        found = 0
        for faults in random_fault_sets(g, 150, 4, seed=17):
            s, t = rnd.sample(range(g.n), 2)
            sl, tl = scheme.vertex_label(s), scheme.vertex_label(t)
            fl = [scheme.edge_label(ei) for ei in faults]
            res = scheme.decode(sl, tl, fl)
            if res.connected or res.cut_member_positions is None:
                continue
            found += 1
            # Deduplicate faults the same way the decoder does.
            uniq = []
            seen = set()
            for ei in faults:
                lab = scheme.edge_label(ei)
                if lab.component != sl.component or lab.identity() in seen:
                    continue
                seen.add(lab.identity())
                uniq.append(ei)
            cut = [uniq[i] for i in res.cut_member_positions]
            assert oracle.is_induced_edge_cut(cut)
            assert not oracle.connected(s, t, cut)
        assert found > 5  # the workload produced real disconnections


class TestCutSides:
    def test_claim_3_3_parity_classification(self):
        """Figure 1: parity of cut edges above v gives the cut side."""
        rnd = random.Random(41)
        g = generators.random_connected_graph(20, extra_edges=24, seed=12)
        tree = RootedTree.bfs(g, root=0)
        anc = AncestryLabeling(tree)
        for _ in range(20):
            side = {v for v in range(g.n) if rnd.random() < 0.5}
            side.discard(0)  # keep the root on side 0 for a clean parity
            cut_tree_edges = [
                (anc.label(e.u), anc.label(e.v))
                for e in g.edges
                if e.index in tree.tree_edge_indices
                and (e.u in side) != (e.v in side)
            ]
            for v in range(g.n):
                expected = 1 if v in side else 0
                assert side_of_vertex(anc.label(v), cut_tree_edges) == expected


class TestSizes:
    def test_label_lengths_scale_as_f_plus_log_n(self):
        g = generators.random_connected_graph(64, extra_edges=64, seed=3)
        small = CycleSpaceConnectivityScheme(g, f=1, seed=1, c_log=4)
        large = CycleSpaceConnectivityScheme(g, f=33, seed=1, c_log=4)
        assert large.max_edge_label_bits() - small.max_edge_label_bits() == 32
        assert small.max_vertex_label_bits() == large.max_vertex_label_bits()

    def test_vertex_label_is_logarithmic(self):
        g = generators.random_connected_graph(128, extra_edges=100, seed=2)
        scheme = CycleSpaceConnectivityScheme(g, f=2)
        assert scheme.max_vertex_label_bits() <= 4 * 16  # O(log n)

    def test_rejects_negative_f(self):
        import pytest

        with pytest.raises(ValueError):
            CycleSpaceConnectivityScheme(generators.cycle_graph(4), f=-1)
