"""Tests for the FT approximate distance labels (Section 4)."""

import math
import random

import pytest

from repro.core.distance_labels import DistanceLabelScheme
from repro.graph import generators
from repro.oracles import DistanceOracle
from tests.conftest import random_fault_sets


def _check_estimates(graph, scheme, trials, max_faults, seed, copy=0):
    oracle = DistanceOracle(graph)
    rnd = random.Random(seed)
    checked = 0
    for faults in random_fault_sets(graph, trials, max_faults, seed + 1):
        s, t = rnd.sample(range(graph.n), 2)
        est = scheme.query(s, t, faults, copy=copy)
        true = oracle.distance(s, t, faults)
        if math.isinf(true):
            assert math.isinf(est)
            continue
        checked += 1
        assert est >= true - 1e-9, f"estimate {est} below distance {true}"
        bound = scheme.stretch_bound(len(faults)) * true
        assert est <= bound + 1e-9, f"estimate {est} above bound {bound}"
    assert checked > trials // 2


class TestUnweighted:
    @pytest.mark.parametrize("base", ["cycle_space", "sketch"])
    def test_random_graph(self, base):
        g = generators.random_connected_graph(36, extra_edges=48, seed=4)
        scheme = DistanceLabelScheme(g, f=2, k=2, seed=7, base_scheme=base)
        _check_estimates(g, scheme, 50, 2, seed=21)

    def test_grid(self):
        g = generators.grid_graph(5, 5)
        scheme = DistanceLabelScheme(g, f=2, k=2, seed=8, base_scheme="cycle_space")
        _check_estimates(g, scheme, 40, 2, seed=22)

    def test_k_one_gives_tightest_estimates(self):
        g = generators.random_connected_graph(24, extra_edges=30, seed=5)
        scheme = DistanceLabelScheme(g, f=1, k=1, seed=9, base_scheme="cycle_space")
        _check_estimates(g, scheme, 30, 1, seed=23)


class TestWeighted:
    def test_weighted_random_graph(self):
        base = generators.random_connected_graph(30, extra_edges=40, seed=6)
        g = generators.with_random_weights(base, 1, 8, seed=10)
        scheme = DistanceLabelScheme(g, f=2, k=2, seed=11, base_scheme="cycle_space")
        _check_estimates(g, scheme, 40, 2, seed=24)
        # K covers the weighted diameter.
        assert scheme.K == math.ceil(math.log2(g.n * g.max_weight()))

    def test_rejects_sub_unit_weights(self):
        from repro.graph.graph import Graph

        g = Graph(3)
        g.add_edge(0, 1, weight=0.5)
        with pytest.raises(ValueError):
            DistanceLabelScheme(g, f=1, k=2)


class TestStructure:
    def test_zero_distance(self):
        g = generators.grid_graph(4, 4)
        scheme = DistanceLabelScheme(g, f=1, k=2, base_scheme="cycle_space")
        assert scheme.query(3, 3, []) == 0.0

    def test_disconnection_reported_as_inf(self):
        g = generators.cycle_graph(8)
        scheme = DistanceLabelScheme(g, f=2, k=2, base_scheme="cycle_space")
        assert math.isinf(scheme.query(0, 4, [0, 4]))

    def test_estimates_monotone_under_scale(self):
        scheme_k = DistanceLabelScheme(
            generators.grid_graph(4, 4), f=1, k=2, base_scheme="cycle_space"
        )
        assert scheme_k.estimate_at_scale(3, 1) == 2 * scheme_k.estimate_at_scale(2, 1)

    def test_every_vertex_has_home_per_scale(self):
        g = generators.random_connected_graph(20, extra_edges=25, seed=7)
        scheme = DistanceLabelScheme(g, f=1, k=2, base_scheme="cycle_space")
        for v in g.vertices():
            label = scheme.vertex_label(v)
            assert set(label.i_star) == set(range(scheme.K + 1))
            for i, j in label.i_star.items():
                assert (i, j) in label.entries  # home cluster contains v

    def test_edge_labels_cover_participating_instances(self):
        g = generators.random_connected_graph(20, extra_edges=25, seed=8)
        scheme = DistanceLabelScheme(g, f=1, k=2, base_scheme="cycle_space")
        for ei in range(0, g.m, 3):
            label = scheme.edge_label(ei)
            e = g.edge(ei)
            for key in label.entries:
                inst = scheme.instances[key]
                # Both endpoints belong to the instance.
                assert e.u in inst.sub.vertex_from_parent
                assert e.v in inst.sub.vertex_from_parent

    def test_heavy_edges_excluded_per_scale(self):
        from repro.graph.graph import Graph

        g = Graph(4)
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=8.0)
        g.add_edge(2, 3, weight=1.0)
        scheme = DistanceLabelScheme(g, f=1, k=1, base_scheme="cycle_space")
        heavy_label = scheme.edge_label(1)
        # The weight-8 edge participates only in scales with 2^i >= 8.
        assert all(i >= 3 for (i, _) in heavy_label.entries)

    def test_copies_validation(self):
        g = generators.cycle_graph(6)
        with pytest.raises(ValueError):
            DistanceLabelScheme(g, f=1, k=2, base_scheme="cycle_space", routing=True)
        with pytest.raises(ValueError):
            DistanceLabelScheme(g, f=1, k=0)
        with pytest.raises(ValueError):
            DistanceLabelScheme(g, f=1, k=2, base_scheme="nope")


class TestSizes:
    def test_label_bits_grow_with_smaller_k(self):
        """Smaller k => more clusters per scale => bigger labels."""
        g = generators.random_connected_graph(40, extra_edges=50, seed=9)
        k1 = DistanceLabelScheme(g, f=1, k=1, base_scheme="cycle_space")
        k3 = DistanceLabelScheme(g, f=1, k=3, base_scheme="cycle_space")
        assert k1.max_vertex_label_bits() >= k3.max_vertex_label_bits()

    def test_bit_length_positive(self):
        g = generators.grid_graph(4, 4)
        scheme = DistanceLabelScheme(g, f=1, k=2, base_scheme="cycle_space")
        assert scheme.vertex_label(0).bit_length() > 0
        assert scheme.edge_label(0).bit_length() > 0
