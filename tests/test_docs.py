"""Documentation-consistency checks (run in the default tier-1 suite).

Docs rot silently; these tests make the load-bearing cross-references
mechanical:

* every ``src/repro/*/`` package that ships a README is linked from the
  top-level ``README.md``;
* the CLI block in ``README.md`` (between the ``cli:start``/``cli:end``
  markers) names exactly the subcommands ``repro.cli`` actually
  registers, and the module docstring of ``repro.cli`` mentions each;
* every relative markdown link in the top-level docs resolves to a real
  file;
* ``benchmarks/README.md`` covers every bench module and every
  committed ``BENCH_*.json``.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro.cli

REPO = Path(__file__).resolve().parent.parent
README = REPO / "README.md"


def _cli_subcommands() -> set[str]:
    parser = repro.cli.build_parser()
    for action in parser._subparsers._group_actions:
        return set(action.choices)
    raise AssertionError("repro.cli parser has no subcommands")


def test_package_readmes_are_linked_from_top_readme():
    readme = README.read_text()
    package_readmes = sorted((REPO / "src" / "repro").glob("*/README.md"))
    assert package_readmes, "expected per-package READMEs under src/repro/"
    for path in package_readmes:
        rel = path.relative_to(REPO).as_posix()
        assert rel in readme, f"top-level README.md does not link {rel}"


def test_cli_block_matches_registered_subcommands():
    readme = README.read_text()
    match = re.search(
        r"<!-- cli:start -->(.*?)<!-- cli:end -->", readme, re.DOTALL
    )
    assert match, "README.md lost its <!-- cli:start/end --> markers"
    documented = set(re.findall(r"^- `([\w-]+)`", match.group(1), re.MULTILINE))
    registered = _cli_subcommands()
    assert documented == registered, (
        f"README CLI block documents {sorted(documented)} but repro.cli "
        f"registers {sorted(registered)}"
    )


def test_cli_module_docstring_mentions_every_subcommand():
    doc = repro.cli.__doc__ or ""
    for name in _cli_subcommands():
        assert f"``{name}``" in doc, (
            f"repro.cli module docstring does not describe {name!r}"
        )


def test_relative_markdown_links_resolve():
    docs = [
        README,
        REPO / "docs" / "ARCHITECTURE.md",
        REPO / "benchmarks" / "README.md",
        *sorted((REPO / "src" / "repro").glob("*/README.md")),
    ]
    for doc in docs:
        assert doc.exists(), f"{doc} is missing"
        for target in re.findall(r"\]\(([^)#]+)\)", doc.read_text()):
            if "://" in target:
                continue  # external URL
            resolved = (doc.parent / target).resolve()
            assert resolved.exists(), f"{doc.name} links to missing {target}"


def test_bench_readme_covers_every_module_and_baseline():
    bench_readme = (REPO / "benchmarks" / "README.md").read_text()
    for module in sorted((REPO / "benchmarks").glob("*.py")):
        assert module.name in bench_readme, (
            f"benchmarks/README.md does not mention {module.name}"
        )
    for baseline in sorted(REPO.glob("BENCH_*.json")):
        assert baseline.name in bench_readme, (
            f"benchmarks/README.md does not mention {baseline.name}"
        )
    # the gate entry points stay documented
    assert "run_baseline.sh" in bench_readme
    assert "bench_smoke" in bench_readme


def test_architecture_doc_links_the_layer_readmes():
    arch = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    for rel in (
        "../src/repro/graph/README.md",
        "../src/repro/core/README.md",
        "../src/repro/serving/README.md",
    ):
        assert rel in arch, f"docs/ARCHITECTURE.md does not link {rel}"
