"""Smoke tests: every example script runs to completion."""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES = [
    "quickstart",
    "datacenter_fault_drill",
    "sensor_mesh_distances",
    "overlay_connectivity",
]


@pytest.fixture(autouse=True)
def _examples_on_path():
    examples_dir = str(Path(__file__).resolve().parent.parent / "examples")
    sys.path.insert(0, examples_dir)
    yield
    sys.path.remove(examples_dir)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = importlib.import_module(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
    assert "Traceback" not in out
