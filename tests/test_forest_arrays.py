"""Equivalence and memory-regression tests for the array-backed forest
and flat label stores (the memory-frugal construction path).

The acceptance bar mirrors ``test_csr_equivalence``: the array-resident
pipeline (shared-array :class:`Forest`, flat sorted membership columns,
lazy array-backed :class:`Graph`) must produce *bit-identical* labels,
``query_many`` answers and route traces to ``engine="reference"`` — on
connected families and on fragmented many-component workloads that the
per-component full-n representation handled wastefully.

The final test is the regression guard for the tentpole itself: a
subprocess builds the n=10^5 scale workload and asserts its
``ru_maxrss`` stays under a budget the pre-rewrite code demonstrably
exceeded (1264.6 MB for the full workload in the committed PR-6
baseline; the build alone re-measured around 1.1 GB).
"""

from __future__ import annotations

import random
import subprocess
import sys

import numpy as np
import pytest

from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.graph.components import connected_components
from repro.routing.fault_tolerant import FaultTolerantRouter

FAMILIES = [
    ("random", lambda: generators.random_connected_graph(64, extra_edges=90, seed=61)),
    ("grid", lambda: generators.grid_graph(8, 8)),
    ("ring_of_cliques", lambda: generators.ring_of_cliques(7, 5)),
    (
        "weighted",
        lambda: generators.with_random_weights(
            generators.random_connected_graph(56, extra_edges=80, seed=62), 1, 8, seed=63
        ),
    ),
    ("path", lambda: generators.grid_graph(1, 80)),
]

#: Sub-critical G(n, m): mean degree 1.4 leaves hundreds of components
#: (isolated vertices, small trees, one emerging giant) — the regime the
#: shared-array forest exists for.
FRAGMENTED = ("fragmented", lambda: generators.gnm_random_graph(2000, 1400, seed=64))

ALL = FAMILIES + [FRAGMENTED]


def test_fragmented_workload_has_hundreds_of_components():
    graph = FRAGMENTED[1]()
    _, count = connected_components(graph)
    assert count >= 500


@pytest.mark.parametrize("name,make", ALL, ids=[f[0] for f in ALL])
def test_labels_identical_across_engines(name, make):
    graph = make()
    fast = SketchConnectivityScheme(graph, seed=8, copies=2)
    ref = SketchConnectivityScheme(graph, seed=8, copies=2, engine="reference")
    assert fast._eid_cache == ref._eid_cache
    for v in range(graph.n):
        assert fast.vertex_label(v) == ref.vertex_label(v)
    for ei in range(graph.m):
        a, b = fast.edge_label(ei), ref.edge_label(ei)
        assert (a.component, a.eid, a.is_tree) == (b.component, b.eid, b.is_tree)
        if a.is_tree:
            for c in range(2):
                assert np.array_equal(a.subtree[c], b.subtree[c])
                assert np.array_equal(a.global_sketch[c], b.global_sketch[c])
    assert fast.max_vertex_label_bits() == ref.max_vertex_label_bits()
    assert fast.max_edge_label_bits() == ref.max_edge_label_bits()


@pytest.mark.parametrize("name,make", ALL, ids=[f[0] for f in ALL])
def test_query_many_identical_across_engines(name, make):
    graph = make()
    fast = SketchConnectivityScheme(graph, seed=9)
    ref = SketchConnectivityScheme(graph, seed=9, engine="reference")
    rnd = random.Random(91)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(40)]
    faults = rnd.sample(range(graph.m), min(4, graph.m))
    fa = fast.query_many(pairs, faults)
    rb = ref.query_many(pairs, faults)
    for a, b in zip(fa, rb):
        assert a.connected == b.connected
        assert a.path == b.path
        assert a.phases_used == b.phases_used


@pytest.mark.parametrize(
    "name,make",
    [FAMILIES[0], FAMILIES[1], FAMILIES[3]],
    ids=[FAMILIES[0][0], FAMILIES[1][0], FAMILIES[3][0]],
)
def test_route_traces_identical_across_engines(name, make):
    graph = make()
    fast = FaultTolerantRouter(graph, f=2, k=2, seed=12)
    ref = FaultTolerantRouter(graph, f=2, k=2, seed=12, engine="reference")
    rnd = random.Random(13)
    for _ in range(12):
        s, t = rnd.sample(range(graph.n), 2)
        faults = rnd.sample(range(graph.m), 2)
        a = fast.route(s, t, faults)
        b = ref.route(s, t, faults)
        assert a.delivered == b.delivered
        assert a.trace == b.trace


@pytest.mark.parametrize("name,make", ALL, ids=[f[0] for f in ALL])
def test_max_edge_label_bits_matches_label_enumeration(name, make):
    """The structural maximum must equal brute-force label enumeration
    (it is a committed fingerprint, so the shortcut may not drift)."""
    graph = make()
    scheme = SketchConnectivityScheme(graph, seed=8)
    naive = max(
        (scheme.edge_label(ei).bit_length() for ei in range(graph.m)),
        default=0,
    )
    assert scheme.max_edge_label_bits() == naive


def test_connected_components_engines_agree_with_faults():
    for name, make in ALL:
        graph = make()
        rnd = random.Random(17)
        for _ in range(5):
            forbidden = rnd.sample(range(graph.m), min(6, graph.m))
            fast = connected_components(graph, forbidden)
            ref = connected_components(graph, forbidden, engine="reference")
            assert fast == ref, name


_RSS_SCRIPT = """
import resource, sys
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators

graph = generators.random_connected_graph(100_000, 150_000, seed=1)
scheme = SketchConnectivityScheme(graph, seed=2)
assert scheme.query(0, 1, []).connected
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024)
"""

#: MB budget for building the n=10^5 scale workload.  The pre-rewrite
#: code (eager Python graph containers, per-vertex dict stores, the
#: concatenating ragged builder) peaked at 1264.6 MB on this workload
#: (committed PR-6 BENCH_scale.json); the array-backed path builds it
#: in well under this.
RSS_BUDGET_MB = 900


def test_build_peak_rss_within_budget():
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    peak_mb = int(proc.stdout.strip())
    assert peak_mb <= RSS_BUDGET_MB, f"build peaked at {peak_mb} MB"
