"""Exactness of the frontier (delta-stepping-style) ball kernel.

``truncated_balls`` grows the radius-``r`` balls that ``sparse_cover``
clusters from; the frontier engine batches many sources through
bucketed relaxation sweeps instead of one heap Dijkstra per source.
Bucketing changes *when* a vertex settles, never *what* distance it
settles at — the kernel runs to the relaxation fixpoint — so every
engine must produce identical ball dictionaries.  These tests pin that
across the families the cover construction meets: high-diameter paths
and rings (where the old per-source fallback was quadratic), grids,
and non-uniform weights (where bucket widths matter).
"""

from __future__ import annotations

import math

import pytest

from repro.graph import generators
from repro.graph.csr import truncated_balls
from repro.graph.graph import Graph


def _path(n: int) -> Graph:
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


FAMILIES = [
    ("path", lambda: _path(400)),
    ("ring", lambda: generators.cycle_graph(400)),
    ("grid", lambda: generators.grid_graph(20, 20)),
    (
        "weighted",
        lambda: generators.with_random_weights(
            generators.random_connected_graph(300, extra_edges=450, seed=5),
            1,
            9,
            seed=6,
        ),
    ),
    (
        "random",
        lambda: generators.random_connected_graph(256, extra_edges=380, seed=7),
    ),
]
FAMILY_IDS = [f[0] for f in FAMILIES]

ENGINES = ["frontier", "dense", "auto"]


@pytest.mark.parametrize("name,make", FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize("radius", [0.0, 3.0, 25.0, math.inf])
def test_engines_match_reference_exactly(name, make, radius):
    graph = make()
    csr = graph.as_csr()
    sources = list(range(graph.n))
    want = truncated_balls(csr, sources, radius, engine="reference")
    for engine in ENGINES:
        got = truncated_balls(csr, sources, radius, engine=engine)
        assert got == want, f"{engine} diverges on {name} at r={radius}"


def test_partial_source_sets_match():
    graph = generators.with_random_weights(
        generators.random_connected_graph(220, extra_edges=330, seed=11), 1, 7, seed=12
    )
    csr = graph.as_csr()
    sources = list(range(0, graph.n, 3))
    want = truncated_balls(csr, sources, 14.0, engine="reference")
    for engine in ENGINES:
        got = truncated_balls(csr, sources, 14.0, engine=engine)
        assert got == want


def test_ball_contents_are_true_truncated_distances():
    graph = generators.with_random_weights(
        generators.random_connected_graph(120, extra_edges=180, seed=13), 1, 5, seed=14
    )
    csr = graph.as_csr()
    radius = 9.0
    balls = truncated_balls(csr, list(range(graph.n)), radius, engine="frontier")
    # Reference distances via the sequential heap Dijkstra engine.
    exact = truncated_balls(csr, list(range(graph.n)), math.inf, engine="reference")
    for s, ball in zip(range(graph.n), balls):
        full = exact[s]
        assert ball == {v: d for v, d in full.items() if d <= radius}


def test_unknown_engine_rejected():
    graph = _path(8)
    with pytest.raises(ValueError, match="engine"):
        truncated_balls(graph.as_csr(), [0], 2.0, engine="bogus")
