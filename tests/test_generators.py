"""Unit tests for the synthetic workload generators."""

import pytest

from repro.graph import generators
from repro.graph.components import is_connected


class TestRandomFamilies:
    def test_random_tree_is_spanning_tree(self):
        g = generators.random_tree(30, seed=4)
        assert g.m == 29
        assert is_connected(g)

    def test_random_connected_graph_is_connected(self):
        for seed in range(5):
            g = generators.random_connected_graph(25, extra_edges=10, seed=seed)
            assert is_connected(g)
            assert g.m >= 24

    def test_random_connected_graph_respects_budget(self):
        g = generators.random_connected_graph(5, extra_edges=100, seed=1)
        assert g.m <= 5 * 4 // 2

    def test_generators_are_deterministic(self):
        a = generators.random_connected_graph(20, extra_edges=15, seed=9)
        b = generators.random_connected_graph(20, extra_edges=15, seed=9)
        assert [(e.u, e.v) for e in a.edges] == [(e.u, e.v) for e in b.edges]

    def test_different_seeds_differ(self):
        a = generators.random_connected_graph(20, extra_edges=15, seed=1)
        b = generators.random_connected_graph(20, extra_edges=15, seed=2)
        assert [(e.u, e.v) for e in a.edges] != [(e.u, e.v) for e in b.edges]

    def test_gnm_edge_count(self):
        g = generators.gnm_random_graph(12, 20, seed=7)
        assert g.m == 20


class TestStructuredFamilies:
    def test_grid_shape(self):
        g = generators.grid_graph(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5  # horizontal + vertical
        assert is_connected(g)

    def test_torus_is_4_regular(self):
        g = generators.torus_graph(4, 5)
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert is_connected(g)

    def test_torus_rejects_small(self):
        with pytest.raises(ValueError):
            generators.torus_graph(2, 5)

    def test_hypercube(self):
        g = generators.hypercube_graph(4)
        assert g.n == 16
        assert g.m == 4 * 16 // 2
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_cycle_graph_small_cases(self):
        assert generators.cycle_graph(1).m == 0
        assert generators.cycle_graph(2).m == 1
        g = generators.cycle_graph(6)
        assert g.m == 6
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_complete_graph(self):
        g = generators.complete_graph(6)
        assert g.m == 15

    def test_ring_of_cliques(self):
        g = generators.ring_of_cliques(4, 5)
        assert g.n == 20
        assert is_connected(g)
        # Bridge edges exist between consecutive clique representatives.
        assert g.has_edge(0, 5)
        assert g.has_edge(15, 0)


class TestLowerBoundGraph:
    def test_structure(self):
        f, length = 3, 5
        g, s, t = generators.lower_bound_graph(f, length)
        assert g.degree(s) == f + 1
        assert g.degree(t) == f + 1
        assert g.n == 2 + (f + 1) * (length - 1)
        assert g.m == (f + 1) * length
        assert is_connected(g)

    def test_path_lengths(self):
        from repro.oracles.distances import shortest_path_distance

        g, s, t = generators.lower_bound_graph(2, 7)
        assert shortest_path_distance(g, s, t) == 7

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            generators.lower_bound_graph(2, 1)
        with pytest.raises(ValueError):
            generators.lower_bound_graph(-1, 5)


class TestWeights:
    def test_with_random_weights_preserves_structure(self):
        base = generators.grid_graph(3, 3)
        g = generators.with_random_weights(base, 1, 5, seed=2)
        assert g.n == base.n and g.m == base.m
        assert all(1.0 <= e.weight <= 5.0 for e in g.edges)
        assert all(float(e.weight).is_integer() for e in g.edges)
