"""Unit + property tests for the GF(2) linear algebra substrate."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.gf2 import XorBasis, gf2_rank, gf2_solve, in_span


def _brute_force_solvable(columns, target):
    for mask in range(1 << len(columns)):
        acc = 0
        for i in range(len(columns)):
            if (mask >> i) & 1:
                acc ^= columns[i]
        if acc == target:
            return True
    return False


class TestXorBasis:
    def test_rank_of_independent_vectors(self):
        basis = XorBasis()
        assert basis.add(0b001)
        assert basis.add(0b010)
        assert basis.add(0b100)
        assert basis.rank == 3

    def test_dependent_vector_rejected(self):
        basis = XorBasis()
        basis.add(0b011)
        basis.add(0b101)
        assert not basis.add(0b110)  # xor of the first two
        assert basis.rank == 2

    def test_zero_vector_never_increases_rank(self):
        basis = XorBasis()
        assert not basis.add(0)
        basis.add(7)
        assert not basis.add(0)

    def test_contains(self):
        basis = XorBasis()
        basis.add(0b1100)
        basis.add(0b0110)
        assert basis.contains(0b1010)
        assert basis.contains(0)
        assert not basis.contains(0b0001)

    def test_represent_returns_correct_combination(self):
        vectors = [0b1100, 0b0110, 0b0001]
        basis = XorBasis()
        for v in vectors:
            basis.add(v)
        combo = basis.represent(0b1011)
        assert combo is not None
        acc = 0
        for i in combo:
            acc ^= vectors[i]
        assert acc == 0b1011

    def test_represent_out_of_span(self):
        basis = XorBasis()
        basis.add(0b10)
        assert basis.represent(0b01) is None

    def test_represent_zero_is_empty(self):
        basis = XorBasis()
        basis.add(5)
        assert basis.represent(0) == []


class TestRankAndSpan:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 255), max_size=8), st.integers(0, 255))
    def test_in_span_matches_brute_force(self, columns, target):
        assert in_span(columns, target) == _brute_force_solvable(columns, target)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 1023), max_size=10))
    def test_rank_bounds(self, vectors):
        r = gf2_rank(vectors)
        assert 0 <= r <= min(len(vectors), 10)

    def test_rank_of_duplicates(self):
        assert gf2_rank([5, 5, 5]) == 1


class TestSolve:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 255), max_size=8), st.integers(0, 255))
    def test_solution_validates(self, columns, target):
        x = gf2_solve(columns, target)
        if x is None:
            assert not _brute_force_solvable(columns, target)
        else:
            acc = 0
            for i, xi in enumerate(x):
                if xi:
                    acc ^= columns[i]
            assert acc == target

    def test_solve_empty_system(self):
        assert gf2_solve([], 0) == []
        assert gf2_solve([], 5) is None

    def test_solve_large_vectors(self):
        columns = [1 << 200, (1 << 200) | 1, 2]
        x = gf2_solve(columns, 3)
        acc = 0
        for i, xi in enumerate(x):
            if xi:
                acc ^= columns[i]
        assert acc == 3
