"""Unit tests for the port-numbered graph substrate."""

import pytest

from repro.graph.graph import Graph
from repro.graph import generators


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        assert g.max_weight() == 1.0

    def test_add_edge_returns_dense_indices(self):
        g = Graph(4)
        assert g.add_edge(0, 1) == 0
        assert g.add_edge(1, 2) == 1
        assert g.add_edge(2, 3) == 2
        assert g.m == 3

    def test_rejects_self_loop(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_rejects_duplicate_edge_either_orientation(self):
        g = Graph(3)
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            g.add_edge(0, 1)
        with pytest.raises(ValueError):
            g.add_edge(1, 0)

    def test_rejects_out_of_range(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)

    def test_rejects_nonpositive_weight(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, weight=0.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, weight=-2.0)


class TestPorts:
    def test_ports_follow_insertion_order(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(0, 3)
        assert g.via_port(0, 0) == (1, 0)
        assert g.via_port(0, 1) == (2, 1)
        assert g.via_port(0, 2) == (3, 2)

    def test_port_of_inverts_via_port(self):
        g = generators.random_connected_graph(20, extra_edges=25, seed=1)
        for u in g.vertices():
            for port in range(g.degree(u)):
                v, _ = g.via_port(u, port)
                assert g.port_of(u, v) == port

    def test_port_of_non_neighbor_raises(self):
        g = Graph(3)
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            g.port_of(0, 2)


class TestQueries:
    def test_edge_between_and_has_edge(self):
        g = Graph(4)
        ei = g.add_edge(2, 1)
        assert g.edge_index_between(1, 2) == ei
        assert g.edge_index_between(2, 1) == ei
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 3)
        assert g.edge_index_between(0, 3) is None

    def test_edge_other_endpoint(self):
        g = Graph(3)
        g.add_edge(0, 2)
        e = g.edge(0)
        assert e.other(0) == 2
        assert e.other(2) == 0
        with pytest.raises(ValueError):
            e.other(1)

    def test_edge_key_is_canonical(self):
        g = Graph(3)
        g.add_edge(2, 0)
        assert g.edge(0).key() == (0, 2)

    def test_degree_and_neighbors(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        assert g.degree(0) == 2
        assert sorted(g.neighbors(0)) == [1, 2]
        assert g.degree(3) == 0

    def test_weights(self):
        g = Graph(3)
        g.add_edge(0, 1, weight=2.5)
        g.add_edge(1, 2, weight=4.0)
        assert g.weight(0) == 2.5
        assert g.max_weight() == 4.0
        assert g.total_weight() == 6.5


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph(3)
        g.add_edge(0, 1)
        h = g.copy()
        h.add_edge(1, 2)
        assert g.m == 1
        assert h.m == 2

    def test_without_edges(self):
        g = generators.cycle_graph(5)
        h = g.without_edges([0, 2])
        assert h.m == g.m - 2
        assert h.n == g.n

    def test_induced_subgraph_maps(self):
        g = generators.grid_graph(3, 3)
        sub = g.induced_subgraph([0, 1, 3, 4])
        assert sub.graph.n == 4
        # Every sub edge corresponds to a real parent edge between the
        # mapped endpoints.
        for le, pe in enumerate(sub.edge_to_parent):
            e = sub.graph.edge(le)
            pe_edge = g.edge(pe)
            mapped = {
                sub.vertex_to_parent[e.u],
                sub.vertex_to_parent[e.v],
            }
            assert mapped == {pe_edge.u, pe_edge.v}
        # 0-1, 0-3, 1-4, 3-4 survive.
        assert sub.graph.m == 4

    def test_induced_subgraph_allowed_edges(self):
        g = generators.grid_graph(3, 3)
        all_edges = {e.index for e in g.edges}
        keep = sorted(all_edges)[:2]
        sub = g.induced_subgraph(range(9), allowed_edges=keep)
        assert sub.graph.m == 2
        assert list(sub.edge_to_parent) == keep

    def test_induced_subgraph_vertex_maps_are_inverse(self):
        g = generators.random_connected_graph(15, extra_edges=10, seed=3)
        sub = g.induced_subgraph([2, 5, 7, 11])
        for lv, pv in enumerate(sub.vertex_to_parent):
            assert sub.vertex_from_parent[pv] == lv

    def test_induced_subgraph_engines_identical(self):
        g = generators.with_random_weights(
            generators.random_connected_graph(60, extra_edges=90, seed=31), 1, 7, seed=32
        )
        allowed = list(range(0, g.m, 2))
        fast = g.induced_subgraph(range(0, 50), allowed_edges=allowed)
        ref = g.induced_subgraph(
            range(0, 50), allowed_edges=allowed, engine="reference"
        )
        assert fast.vertex_to_parent == ref.vertex_to_parent
        assert fast.vertex_from_parent == ref.vertex_from_parent
        assert fast.edge_to_parent == ref.edge_to_parent
        assert fast.graph.n == ref.graph.n and fast.graph.m == ref.graph.m
        for ei in range(fast.graph.m):
            a, b = fast.graph.edge(ei), ref.graph.edge(ei)
            assert (a.u, a.v, a.weight) == (b.u, b.v, b.weight)
        for v in range(fast.graph.n):
            # identical port numbering, not just identical edge sets
            assert fast.graph.incident(v) == ref.graph.incident(v)
        assert fast.graph.max_weight() == ref.graph.max_weight()
        assert fast.graph.total_weight() == ref.graph.total_weight()

    def test_induced_subgraph_boolean_mask(self):
        import numpy as np

        g = generators.grid_graph(4, 4)
        mask = np.zeros(g.m, dtype=bool)
        mask[: g.m // 2] = True
        fast = g.induced_subgraph(range(g.n), allowed_edges=mask)
        ref = g.induced_subgraph(
            range(g.n), allowed_edges=np.flatnonzero(mask).tolist(), engine="reference"
        )
        assert fast.edge_to_parent == ref.edge_to_parent

    def test_induced_subgraph_ignores_out_of_range_allowed_ids(self):
        g = generators.grid_graph(3, 3)
        dirty = [0, 1, -1, g.m, g.m + 5]
        fast = g.induced_subgraph(range(g.n), allowed_edges=dirty)
        ref = g.induced_subgraph(range(g.n), allowed_edges=dirty, engine="reference")
        assert fast.edge_to_parent == ref.edge_to_parent == (0, 1)
