"""Tests for pairwise-independent hashing and extended edge identifiers."""

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.ancestry import AncestryLabeling
from repro.graph.spanning_tree import RootedTree
from repro.sketches.edge_ids import EidCodec, ExtendedEdgeIds, UidScheme
from repro.sketches.hashing import MERSENNE_P, PairwiseHashFamily


class TestPairwiseHashFamily:
    def test_values_in_range(self):
        fam = PairwiseHashFamily(8, out_bits=10, seed=3)
        for i in range(8):
            for x in (0, 1, 12345, MERSENNE_P - 1):
                assert 0 <= fam.value(i, x) < (1 << 10)

    def test_all_values_matches_value(self):
        fam = PairwiseHashFamily(6, out_bits=12, seed=5)
        for x in (0, 7, 991, 100_000):
            vec = fam.all_values(x)
            assert list(vec) == [fam.value(i, x) for i in range(6)]

    def test_deterministic_per_seed(self):
        a = PairwiseHashFamily(4, 8, seed=1)
        b = PairwiseHashFamily(4, 8, seed=1)
        c = PairwiseHashFamily(4, 8, seed=2)
        assert a.value(0, 99) == b.value(0, 99)
        assert any(a.value(i, 99) != c.value(i, 99) for i in range(4))

    def test_distribution_roughly_uniform(self):
        fam = PairwiseHashFamily(1, out_bits=1, seed=9)
        ones = sum(fam.value(0, x) for x in range(2000))
        assert 800 < ones < 1200  # a fair coin over keys

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PairwiseHashFamily(0, 8, seed=1)
        with pytest.raises(ValueError):
            PairwiseHashFamily(4, 0, seed=1)
        with pytest.raises(ValueError):
            PairwiseHashFamily(4, 32, seed=1)

    def test_key_out_of_range_rejected(self):
        fam = PairwiseHashFamily(2, 8, seed=1)
        with pytest.raises(ValueError):
            fam.value(0, MERSENNE_P)

    def test_seed_bits_accounting(self):
        fam = PairwiseHashFamily(10, 8, seed=1)
        assert fam.seed_bits() == 10 * 62


class TestUidScheme:
    def test_order_insensitive(self):
        uid = UidScheme(seed=7)
        assert uid.uid(3, 9) == uid.uid(9, 3)

    def test_distinct_edges_distinct_uids(self):
        uid = UidScheme(seed=7)
        seen = {uid.uid(u, v) for u in range(30) for v in range(u + 1, 30)}
        assert len(seen) == 30 * 29 // 2  # no collisions at this scale

    def test_matches_validates_only_own_edge(self):
        uid = UidScheme(seed=7)
        value = uid.uid(2, 5)
        assert uid.matches(value, 2, 5)
        assert uid.matches(value, 5, 2)
        assert not uid.matches(value, 2, 6)

    def test_xor_of_two_uids_is_invalid(self):
        """Lemma 3.8: the XOR of >= 2 UIDs does not validate (w.h.p.)."""
        uid = UidScheme(seed=11)
        pairs = [(u, v) for u in range(20) for v in range(u + 1, 20)]
        for (a, b), (c, d) in zip(pairs, pairs[7:]):
            x = uid.uid(a, b) ^ uid.uid(c, d)
            for (p, q) in [(a, b), (c, d), (a, c)]:
                assert not uid.matches(x, p, q)


class TestEidCodec:
    def test_pack_unpack_roundtrip(self):
        codec = EidCodec([("a", 5), ("b", 12), ("c", 1)])
        values = {"a": 19, "b": 4000, "c": 1}
        assert codec.unpack(codec.pack(values)) == values
        assert codec.total_bits == 18

    def test_overflowing_field_rejected(self):
        codec = EidCodec([("a", 3)])
        with pytest.raises(ValueError):
            codec.pack({"a": 8})


class TestExtendedEdgeIds:
    def _make(self, routing=False):
        g = generators.random_connected_graph(20, extra_edges=20, seed=5)
        tree = RootedTree.bfs(g, root=0)
        anc = AncestryLabeling(tree)
        uid = UidScheme(seed=3)
        if routing:
            eids = ExtendedEdgeIds(
                g,
                uid,
                anc.label,
                port_bits=8,
                tlabel_bits=16,
                tlabel_of=lambda v: v * 2 + 1,
            )
        else:
            eids = ExtendedEdgeIds(g, uid, anc.label)
        return g, tree, anc, eids

    def test_eid_decodes_to_own_edge(self):
        g, _, anc, eids = self._make()
        for e in g.edges:
            d = eids.try_decode(eids.eid(e.index))
            assert d is not None
            assert {d.u, d.v} == {e.u, e.v}
            assert d.anc_u == anc.label(d.u)
            assert d.anc_v == anc.label(d.v)

    def test_routing_fields_roundtrip(self):
        g, _, _, eids = self._make(routing=True)
        for e in g.edges:
            d = eids.try_decode(eids.eid(e.index))
            x, y = d.u, d.v
            assert g.via_port(x, d.port_u)[0] == y
            assert g.via_port(y, d.port_v)[0] == x
            assert d.tlabel_u == x * 2 + 1
            assert d.tlabel_v == y * 2 + 1

    def test_xor_of_two_eids_rejected(self):
        g, _, _, eids = self._make()
        a = eids.eid(0)
        b = eids.eid(1)
        assert eids.try_decode(a ^ b) is None

    def test_zero_rejected(self):
        _, _, _, eids = self._make()
        assert eids.try_decode(0) is None

    def test_endpoint_info(self):
        g, _, _, eids = self._make(routing=True)
        d = eids.try_decode(eids.eid(0))
        anc_u, port_u, tl_u = d.endpoint_info(d.u)
        assert (anc_u, port_u, tl_u) == (d.anc_u, d.port_u, d.tlabel_u)
        with pytest.raises(ValueError):
            d.endpoint_info(10_000)

    def test_id_overrides(self):
        """Local instances embed global ids/ports via the hooks."""
        g = generators.grid_graph(3, 3)
        sub = g.induced_subgraph([0, 1, 3, 4])
        tree = RootedTree.bfs(sub.graph, root=0)
        anc = AncestryLabeling(tree)
        to_parent = sub.vertex_to_parent
        eids = ExtendedEdgeIds(
            sub.graph,
            UidScheme(seed=2),
            anc.label,
            id_of=lambda lv: to_parent[lv],
            id_space=g.n,
            port_bits=6,
            tlabel_bits=4,
            tlabel_of=lambda lv: lv,
            port_fn=lambda lu, lv: g.port_of(to_parent[lu], to_parent[lv]),
        )
        for le in range(sub.graph.m):
            d = eids.try_decode(eids.eid(le))
            assert d is not None
            e = g.edge(sub.edge_to_parent[le])
            assert {d.u, d.v} == {e.u, e.v}  # global ids embedded
            assert g.via_port(d.u, d.port_u)[0] == d.v  # global ports
