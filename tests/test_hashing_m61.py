"""Property tests for the ``2^61 - 1`` Mersenne pairwise family.

The m61 family is the tentpole that retired the 46341-id ceiling: its
122-bit products are evaluated with split-multiply uint64 limb
arithmetic, so the tests here pin (a) exactness of the limb path
against big-int reference arithmetic on adversarial operands, (b) the
output-range contract, (c) determinism across processes (labels built
on one host must decode on another), (d) a uniformity smoke check of
the pairwise-independence guarantee, and (e) the family-selection rule
that keeps every ``id_space <= 46341`` workload on the bit-identical
legacy m31 family.
"""

from __future__ import annotations

import hashlib
import subprocess
import sys

import numpy as np
import pytest

from repro.sketches.hashing import (
    MERSENNE61_P,
    MERSENNE_P,
    Mersenne61HashFamily,
    PairwiseHashFamily,
    _mulmod_m61,
    family_for_key_space,
    max_sketch_id_space,
)

#: operands that stress every limb-split branch: zero limbs, all-ones
#: limbs, the 29-bit cross-sum split boundary, and the modulus edge.
_EDGE_KEYS = [
    0,
    1,
    2,
    (1 << 29) - 1,
    1 << 29,
    (1 << 32) - 1,
    1 << 32,
    (1 << 32) + 1,
    (1 << 61) - 3,
    MERSENNE61_P - 1,
]


def test_mulmod_m61_matches_bigint_on_adversarial_operands():
    ops = np.array(_EDGE_KEYS, dtype=np.uint64)
    a, x = np.meshgrid(ops, ops)
    a, x = a.ravel(), x.ravel()
    got = _mulmod_m61(a, x)
    want = np.array(
        [(int(ai) * int(xi)) % MERSENNE61_P for ai, xi in zip(a, x)],
        dtype=np.uint64,
    )
    np.testing.assert_array_equal(got, want)


def test_mulmod_m61_matches_bigint_on_random_operands():
    rng = np.random.default_rng(11)
    a = rng.integers(0, MERSENNE61_P, size=4096, dtype=np.uint64)
    x = rng.integers(0, MERSENNE61_P, size=4096, dtype=np.uint64)
    got = _mulmod_m61(a, x)
    want = np.array(
        [(int(ai) * int(xi)) % MERSENNE61_P for ai, xi in zip(a, x)],
        dtype=np.uint64,
    )
    np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("out_bits", [1, 8, 31, 61])
def test_m61_vectorized_agrees_with_scalar_bigint_reference(out_bits):
    fam = Mersenne61HashFamily(count=5, out_bits=out_bits, seed=7)
    rng = np.random.default_rng(13)
    keys = np.concatenate(
        [
            np.array(_EDGE_KEYS, dtype=np.uint64),
            rng.integers(0, MERSENNE61_P, size=512, dtype=np.uint64),
        ]
    )
    batch = fam.all_values_many(keys)
    assert batch.shape == (keys.size, fam.count)
    for i in range(fam.count):
        unit = fam.unit_values_many(i, keys)
        np.testing.assert_array_equal(unit, batch[:, i])
        for j in (0, 1, len(keys) - 1, 17, 201):
            assert int(batch[j, i]) == fam.value(i, int(keys[j]))
    one = fam.all_values(int(keys[3]))
    np.testing.assert_array_equal(one, batch[3])


@pytest.mark.parametrize("out_bits", [1, 7, 61])
def test_m61_outputs_stay_in_range(out_bits):
    fam = Mersenne61HashFamily(count=8, out_bits=out_bits, seed=3)
    rng = np.random.default_rng(5)
    keys = rng.integers(0, MERSENNE61_P, size=2048, dtype=np.uint64)
    vals = fam.all_values_many(keys)
    assert int(vals.max()) < (1 << out_bits)
    assert int(vals.min()) >= 0


def test_m61_rejects_out_of_domain_keys_and_bad_params():
    fam = Mersenne61HashFamily(count=2, out_bits=8, seed=1)
    with pytest.raises(ValueError):
        fam.value(0, MERSENNE61_P)
    with pytest.raises(ValueError):
        fam.value(0, -1)
    with pytest.raises(ValueError):
        Mersenne61HashFamily(count=0, out_bits=8, seed=1)
    with pytest.raises(ValueError):
        Mersenne61HashFamily(count=1, out_bits=62, seed=1)


def _digest_script() -> str:
    return (
        "import hashlib, numpy as np\n"
        "from repro.sketches.hashing import Mersenne61HashFamily\n"
        "fam = Mersenne61HashFamily(count=6, out_bits=20, seed=42)\n"
        "keys = np.arange(0, 5_000_000, 997, dtype=np.uint64)\n"
        "vals = np.ascontiguousarray(fam.all_values_many(keys))\n"
        "print(hashlib.sha256(vals.tobytes()).hexdigest())\n"
    )


def test_m61_deterministic_across_processes():
    """Same seed -> same hash values in a fresh interpreter.

    Snapshots persist only the seed, so cross-process determinism is
    what lets a restored scheme answer bit-identically on another host.
    """
    runs = [
        subprocess.run(
            [sys.executable, "-c", _digest_script()],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
    fam = Mersenne61HashFamily(count=6, out_bits=20, seed=42)
    keys = np.arange(0, 5_000_000, 997, dtype=np.uint64)
    here = hashlib.sha256(
        np.ascontiguousarray(fam.all_values_many(keys)).tobytes()
    ).hexdigest()
    assert here == runs[0]


def test_m61_uniformity_smoke():
    """Loose frequency checks on the hash output distribution.

    Not a statistical proof — a smoke alarm for catastrophic bias (a
    broken limb fold typically zeroes or saturates whole bit ranges).
    """
    fam = Mersenne61HashFamily(count=4, out_bits=1, seed=9)
    rng = np.random.default_rng(17)
    keys = rng.integers(0, MERSENNE61_P, size=20_000, dtype=np.uint64)
    bits = fam.all_values_many(keys).astype(np.float64)
    means = bits.mean(axis=0)
    assert np.all(np.abs(means - 0.5) < 0.02), means

    fam8 = Mersenne61HashFamily(count=2, out_bits=8, seed=10)
    vals = fam8.all_values_many(keys)
    for i in range(fam8.count):
        counts = np.bincount(vals[:, i].astype(np.int64), minlength=256)
        expected = keys.size / 256.0
        # ~4.5 sigma of a Poisson(78) count; catastrophic bias only.
        assert counts.max() < expected * 1.5 and counts.min() > expected * 0.5


def test_family_selection_boundary():
    cap = max_sketch_id_space(MERSENNE_P)
    assert cap == 46341
    assert isinstance(family_for_key_space(3, 8, 1, cap), PairwiseHashFamily)
    assert isinstance(
        family_for_key_space(3, 8, 1, cap + 1), Mersenne61HashFamily
    )
    assert max_sketch_id_space(MERSENNE61_P) == 1518500250
    # The bound is exact: the largest edge key of K ids must fit.
    for modulus in (MERSENNE_P, MERSENNE61_P):
        k = max_sketch_id_space(modulus)
        assert (k - 2) * k + (k - 1) < modulus
        assert (k - 1) * (k + 1) + k >= modulus
