"""Integration scenarios exercising the full stack end to end."""

import math
import random

import pytest

from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.oracles import ConnectivityOracle, DistanceOracle
from repro.routing.baselines import InteriorRoutingBaseline
from repro.routing.fault_tolerant import FaultTolerantRouter


class TestAdversarialFaultPlacement:
    """Faults chosen on the current shortest path — the hard case."""

    def _adversarial_faults(self, g, s, t, count):
        from repro.oracles.distances import shortest_path

        faults = []
        for _ in range(count):
            p = shortest_path(g, s, t, faults)
            if p is None or len(p) < 2:
                break
            mid = len(p) // 2
            ei = g.edge_index_between(p[mid], p[mid + 1] if mid + 1 < len(p) else p[mid - 1])
            if ei is None or ei in faults:
                break
            faults.append(ei)
        return faults

    def test_connectivity_schemes_on_adversarial_faults(self):
        g = generators.torus_graph(4, 5)
        oracle = ConnectivityOracle(g)
        cs = CycleSpaceConnectivityScheme(g, f=3, seed=1)
        sk = SketchConnectivityScheme(g, seed=1)
        for s, t in [(0, 10), (3, 17), (1, 12)]:
            faults = self._adversarial_faults(g, s, t, 3)
            expected = oracle.connected(s, t, faults)
            assert cs.query(s, t, faults) == expected
            assert sk.query(s, t, faults).connected == expected

    def test_routing_detours_around_adversarial_faults(self):
        g = generators.torus_graph(4, 4)
        router = FaultTolerantRouter(g, f=2, k=2, seed=2)
        oracle = DistanceOracle(g)
        for s, t in [(0, 10), (5, 15)]:
            faults = self._adversarial_faults(g, s, t, 2)
            res = router.route(s, t, faults)
            true = oracle.distance(s, t, faults)
            assert res.delivered
            assert true <= res.length <= router.stretch_bound(len(faults)) * true


class TestRouterVsBaseline:
    def test_compact_tables_much_smaller_than_baseline(self):
        g = generators.random_connected_graph(48, extra_edges=120, seed=3)
        router = FaultTolerantRouter(g, f=1, k=2, seed=4)
        baseline = InteriorRoutingBaseline(g)
        # Report-only sanity: the compact scheme's *label* is tiny
        # compared to the full-graph baseline tables.
        assert router.max_label_bits() < baseline.max_table_bits() / 5

    def test_stretch_comparable_on_few_faults(self):
        g = generators.grid_graph(5, 5)
        router = FaultTolerantRouter(g, f=1, k=2, seed=5)
        baseline = InteriorRoutingBaseline(g)
        rnd = random.Random(6)
        worst_ratio = 0.0
        for _ in range(15):
            s, t = rnd.sample(range(g.n), 2)
            ei = rnd.randrange(g.m)
            ours = router.route(s, t, [ei])
            theirs = baseline.route(s, t, [ei])
            if not (ours.delivered and theirs.delivered):
                assert ours.delivered == theirs.delivered
                continue
            if theirs.length > 0:
                worst_ratio = max(worst_ratio, ours.length / theirs.length)
        assert worst_ratio <= router.stretch_bound(1)


class TestMultiComponent:
    def test_all_layers_handle_disconnected_input(self):
        from repro.graph.graph import Graph

        g = Graph(10)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            g.add_edge(u, v)
        for u, v in [(4, 5), (5, 6), (6, 7), (7, 8), (8, 9)]:
            g.add_edge(u, v)
        cs = CycleSpaceConnectivityScheme(g, f=2, seed=7)
        sk = SketchConnectivityScheme(g, seed=7)
        dist = DistanceLabelScheme(g, f=2, k=2, seed=7, base_scheme="cycle_space")
        assert not cs.query(0, 5, [])
        assert not sk.query(0, 5, []).connected
        assert math.isinf(dist.query(0, 5, []))
        assert cs.query(4, 9, [])
        assert sk.query(4, 9, []).connected
        assert not math.isinf(dist.query(4, 9, []))

    def test_fault_in_other_component_is_ignored(self):
        from repro.graph.graph import Graph

        g = Graph(8)
        for u, v in [(0, 1), (1, 2), (2, 0)]:
            g.add_edge(u, v)
        for u, v in [(3, 4), (4, 5), (5, 6), (6, 7)]:
            g.add_edge(u, v)
        cs = CycleSpaceConnectivityScheme(g, f=2, seed=8)
        sk = SketchConnectivityScheme(g, seed=8)
        # Faults in the path component do not affect the triangle.
        assert cs.query(0, 2, [3, 4])
        assert sk.query(0, 2, [3, 4]).connected


class TestDeterminism:
    def test_same_seed_same_answers_and_sizes(self):
        g = generators.random_connected_graph(24, extra_edges=30, seed=9)
        a = SketchConnectivityScheme(g, seed=42)
        b = SketchConnectivityScheme(g, seed=42)
        rnd = random.Random(10)
        for _ in range(10):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), 3)
            ra, rb = a.query(s, t, faults), b.query(s, t, faults)
            assert ra.connected == rb.connected
        assert a.max_edge_label_bits() == b.max_edge_label_bits()

    def test_routing_deterministic(self):
        g = generators.grid_graph(4, 4)
        r1 = FaultTolerantRouter(g, f=1, k=2, seed=11)
        r2 = FaultTolerantRouter(g, f=1, k=2, seed=11)
        ei = g.edge_index_between(5, 6)
        a = r1.route(4, 7, [ei])
        b = r2.route(4, 7, [ei])
        assert a.length == b.length
        assert a.telemetry.hops == b.telemetry.hops


class TestWeightedEndToEnd:
    def test_weighted_torus_full_pipeline(self):
        base = generators.torus_graph(3, 4)
        g = generators.with_random_weights(base, 1, 4, seed=12)
        oracle = DistanceOracle(g)
        router = FaultTolerantRouter(g, f=2, k=2, seed=13)
        dist = DistanceLabelScheme(g, f=2, k=2, seed=13, base_scheme="cycle_space")
        rnd = random.Random(14)
        for _ in range(10):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), rnd.randint(0, 2))
            true = oracle.distance(s, t, faults)
            est = dist.query(s, t, faults)
            res = router.route(s, t, faults)
            if math.isinf(true):
                assert math.isinf(est) and not res.delivered
                continue
            assert true - 1e-9 <= est
            assert res.delivered
            assert res.length <= router.stretch_bound(len(faults)) * true + 1e-9
