"""Tests for the port-based network simulator."""

import pytest

from repro.graph import generators
from repro.routing.network import FaultyEdgeError, Network, RouteResult, Telemetry


class TestTraversal:
    def test_traverse_moves_and_meters(self):
        g = generators.with_random_weights(generators.grid_graph(3, 3), 1, 5, seed=1)
        net = Network(g)
        tel = Telemetry()
        port = g.port_of(0, 1)
        assert net.traverse(0, port, tel) == 1
        assert tel.hops == 1
        assert tel.weighted == g.weight(g.edge_index_between(0, 1))

    def test_traverse_faulty_raises(self):
        g = generators.grid_graph(3, 3)
        ei = g.edge_index_between(0, 1)
        net = Network(g, faults=[ei])
        with pytest.raises(FaultyEdgeError):
            net.traverse(0, g.port_of(0, 1), Telemetry())

    def test_is_faulty_port(self):
        g = generators.grid_graph(3, 3)
        ei = g.edge_index_between(0, 3)
        net = Network(g, faults=[ei])
        assert net.is_faulty_port(0, g.port_of(0, 3))
        assert net.is_faulty_port(3, g.port_of(3, 0))
        assert not net.is_faulty_port(0, g.port_of(0, 1))

    def test_round_trip_charges_both_ways(self):
        g = generators.with_random_weights(generators.grid_graph(3, 3), 2, 2, seed=2)
        net = Network(g)
        tel = Telemetry()
        w = net.round_trip(0, g.port_of(0, 1), tel)
        assert w == 1
        assert tel.hops == 2
        assert tel.weighted == 4.0
        assert tel.gamma_queries == 1

    def test_round_trip_faulty_raises(self):
        g = generators.grid_graph(3, 3)
        ei = g.edge_index_between(0, 1)
        net = Network(g, faults=[ei])
        with pytest.raises(FaultyEdgeError):
            net.round_trip(0, g.port_of(0, 1), Telemetry())


class TestTelemetry:
    def test_note_header_keeps_max(self):
        tel = Telemetry()
        tel.note_header(100)
        tel.note_header(50)
        tel.note_header(200)
        assert tel.max_header_bits == 200

    def test_route_result_stretch(self):
        res = RouteResult(delivered=True, s=0, t=1, telemetry=Telemetry(), length=30.0)
        assert res.stretch(10.0) == 3.0
        assert res.stretch(0.0) == 1.0
        undelivered = RouteResult(delivered=False, s=0, t=1, telemetry=Telemetry())
        assert undelivered.stretch(10.0) == float("inf")
