"""Observability layer: registry exactness, tracing, bit-identity.

The contracts PR 10 introduced:

* the metrics registry is thread-safe (concurrent increments lose
  nothing) and histograms over the fixed ``2^(1/4)`` bucket family
  merge **exactly** across processes — a parent aggregating worker
  registries reports what one process observing everything would have;
* a client-minted trace id rides the wire protocol through the shard
  fan-out and comes back on the reply, while untraced frames stay
  byte-identical to protocol v1 (old clients unaffected);
* the slow-query log captures span timelines over the STATS plane;
* tracing observes, never steers: answers and snapshot digests are
  bit-identical with tracing/metrics on or off.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.obs import (
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    SlowQueryLog,
    Trace,
    bucket_index,
    bucket_upper_edge,
    mint_trace_id,
    render_prometheus,
)
from repro.server import QueryClient
from repro.server.protocol import (
    FLAG_TRACED,
    FrameDecoder,
    FrameType,
    ProtocolError,
    encode_frame,
)
from repro.store import save_snapshot

from server_util import ServerThread


def _graph(n=48, seed=0):
    return generators.random_connected_graph(n, extra_edges=n, seed=seed)


# ---------------------------------------------------------------------------
# registry: bucket family, thread safety, exact merge
# ---------------------------------------------------------------------------


def test_bucket_family_is_fixed_and_monotone():
    # bucket i covers (2^((i-1)/4), 2^(i/4)]: edges depend only on i
    for value in (0.001, 0.5, 1.0, 1.5, 7.0, 1e6):
        idx = bucket_index(value)
        assert value <= bucket_upper_edge(idx) * (1 + 1e-12)
        assert value > bucket_upper_edge(idx - 1) * (1 - 1e-9)
    assert bucket_index(0.0) == bucket_index(-5.0)  # clamp bucket
    assert bucket_upper_edge(4) == 2.0  # four buckets per octave


def test_registry_thread_safety_under_concurrent_increments():
    reg = MetricsRegistry()
    threads, per_thread = 8, 2000

    def hammer(i):
        counter = reg.counter("hot")  # same instruments from every thread
        gauge = reg.gauge("depth")
        hist = reg.histogram("lat")
        for j in range(per_thread):
            counter.inc()
            gauge.inc()
            gauge.dec()
            hist.observe(1.0 + (j % 7))

    ts = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    wire = reg.to_wire()
    assert wire["counters"]["hot"] == threads * per_thread
    assert wire["gauges"]["depth"] == 0.0
    hist = wire["histograms"]["lat"]
    assert hist["count"] == threads * per_thread
    assert sum(hist["buckets"].values()) == threads * per_thread


def test_histogram_merge_is_exact():
    """Merged shards == one histogram that saw every sample."""
    values = [0.0003 * (i % 91) + 0.0001 for i in range(3000)]
    whole = Histogram("h")
    parts = [Histogram("h") for _ in range(4)]
    for i, v in enumerate(values):
        whole.observe(v)
        parts[i % 4].observe(v)
    merged = Histogram("h")
    for part in parts:
        merged.merge(part)
    assert merged.buckets == whole.buckets
    assert merged.count == whole.count
    assert merged.vmin == whole.vmin and merged.vmax == whole.vmax
    assert merged.total == pytest.approx(whole.total)
    for q in (50, 90, 99, 99.9):
        assert merged.percentile(q) == whole.percentile(q)


_WORKER_SNIPPET = """
import json, sys
from repro.obs import MetricsRegistry
seed = int(sys.argv[1])
reg = MetricsRegistry()
reg.counter("worker.events").inc(seed * 10)
hist = reg.histogram("worker.seconds")
for i in range(500):
    hist.observe(((seed * 7919 + i * 104729) % 1000) / 1000.0 + 0.001)
sys.stdout.write(reg.to_bytes().hex())
"""


def test_histogram_merge_exactness_across_spawn_workers():
    """Fresh worker processes ship registries as bytes; the parent's
    merge equals one registry that observed every sample itself."""
    import os

    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    parent = MetricsRegistry()
    replay = MetricsRegistry()
    for seed in (1, 2, 3):
        out = subprocess.run(
            [sys.executable, "-c", _WORKER_SNIPPET, str(seed)],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        parent.merge_bytes(bytes.fromhex(out.stdout))
        replay.counter("worker.events").inc(seed * 10)
        hist = replay.histogram("worker.seconds")
        for i in range(500):
            hist.observe(((seed * 7919 + i * 104729) % 1000) / 1000.0 + 0.001)
    assert parent.to_wire() == replay.to_wire()


def test_render_prometheus_cumulative_buckets():
    reg = MetricsRegistry()
    reg.counter("requests").inc(3)
    reg.gauge("open").set(2)
    h = reg.histogram("lat")
    for v in (0.5, 1.0, 2.0):
        h.observe(v)
    text = render_prometheus(reg.to_wire())
    assert "# TYPE repro_requests counter" in text
    assert "repro_requests 3" in text
    assert "repro_open 2" in text
    assert 'repro_lat_bucket{le="+Inf"} 3' in text
    assert "repro_lat_count 3" in text
    # cumulative counts never decrease
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_lat_bucket")
    ]
    assert counts == sorted(counts)


def test_phase_timer_keys_and_rounding():
    timer = PhaseTimer().start()
    with timer.phase("forest"):
        pass
    timer.split("eids")
    timer.record("sketches", 0.12345)
    assert list(timer.seconds) == ["forest", "eids", "sketches"]
    assert timer.rounded(3)["sketches"] == 0.123
    timer.record("sketches", 0.1)  # re-entry accumulates
    assert timer.seconds["sketches"] == pytest.approx(0.22345)


# ---------------------------------------------------------------------------
# wire protocol: trace flag
# ---------------------------------------------------------------------------


def test_untraced_frames_are_byte_identical_to_v1():
    plain = encode_frame(FrameType.PING, 7, None)
    assert plain[3] & FLAG_TRACED == 0  # type byte, flag clear
    traced = encode_frame(FrameType.PING, 7, None, trace_id=0x1234)
    assert traced[3] & FLAG_TRACED
    assert len(traced) == len(plain) + 8
    # stripping the flag and the 8-byte id recovers the v1 frame
    stripped = traced[:3] + bytes([traced[3] & 0x7F]) + traced[4:16]
    assert stripped == plain[:16]
    assert traced[24:] == plain[16:]  # payload untouched


def test_zero_trace_id_rejected_on_encode_and_decode():
    with pytest.raises(ValueError):
        encode_frame(FrameType.PING, 1, None, trace_id=0)
    # hand-craft a flagged frame with a zero id: decoder poisons
    good = bytearray(encode_frame(FrameType.PING, 1, None, trace_id=1))
    good[16:24] = b"\x00" * 8
    dec = FrameDecoder()
    dec.feed(bytes(good))
    with pytest.raises(ProtocolError):
        list(dec.frames())


def test_trace_roundtrips_through_decoder():
    tid = mint_trace_id()
    dec = FrameDecoder()
    dec.feed(encode_frame(FrameType.PING, 9, None, trace_id=tid))
    (frame,) = list(dec.frames())
    assert frame.type is FrameType.PING
    assert frame.trace_id == tid
    dec.feed(encode_frame(FrameType.PING, 10, None))
    (frame,) = list(dec.frames())
    assert frame.trace_id is None


# ---------------------------------------------------------------------------
# end-to-end: trace propagation, slow log, bit-identity
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def served_scheme():
    graph = _graph(64, seed=3)
    scheme = SketchConnectivityScheme(graph, seed=2)
    with ServerThread(
        scheme, num_shards=2, slow_threshold_s=0.0, deadline_s=60.0
    ) as srv:
        yield graph, scheme, srv


def test_trace_id_propagates_socket_to_shard_to_reply(served_scheme):
    graph, scheme, srv = served_scheme
    pairs = [(0, 1), (2, 3), (4, 5)]
    faults = [0, 2]
    with QueryClient("127.0.0.1", srv.port, timeout=60) as client:
        tid = mint_trace_id()
        traced = client.connectivity(pairs, faults, trace_id=tid)
        assert client.last_trace_id == tid  # echoed on the reply
        plain = client.connectivity(pairs, faults)
        assert client.last_trace_id is None  # untraced -> no echo
        assert traced == plain  # tracing never changes an answer
        stats = client.stats()
    # the shard fan-out recorded spans for the traced request
    entries = [e for e in stats.slow_queries if e["trace_id"] == f"{tid:016x}"]
    assert entries, "traced request missing from the slow-query log"
    span_names = {s["name"] for e in entries for s in e["spans"]}
    assert "decode" in span_names
    assert "shard" in span_names


def test_slow_query_log_capture_over_stats_plane(served_scheme):
    graph, scheme, srv = served_scheme
    with QueryClient("127.0.0.1", srv.port, timeout=60) as client:
        before = len(client.stats().slow_queries)
        client.connectivity([(1, 2)], [1])
        stats = client.stats()
    entries = stats.slow_queries
    # threshold 0.0 keeps every request; ours arrived after `before`
    assert len(entries) > before or stats["slow_queries"]["recorded"] > before
    latest = entries[-1]
    assert latest["total_s"] >= 0.0
    assert latest["frame"] in ("CONNECTIVITY", "STATS")
    assert all(
        set(span) >= {"name", "start_s", "dur_s"}
        for entry in entries
        for span in entry["spans"]
    )


def test_stats_report_registry_dump(served_scheme):
    graph, scheme, srv = served_scheme
    with QueryClient("127.0.0.1", srv.port, timeout=60) as client:
        client.connectivity([(6, 7)], [3])
        stats = client.stats()
    assert stats.get("metrics_enabled") is True
    assert len(stats.queue_depth) == 2  # one entry per shard
    assert all(depth >= 0 for depth in stats.queue_depth)
    assert 0.0 <= stats.cache_hit_rate <= 1.0
    assert stats.counters["server.queries_total"] >= 1
    assert "server.request_seconds" in stats.histograms
    hist = stats.histogram("server.request_seconds")
    assert hist["count"] >= 1 and "buckets" in hist
    per_shard = stats["service"]["per_shard_cache"]
    assert len(per_shard) == 2
    assert all({"hits", "misses", "hit_rate"} <= set(c) for c in per_shard)
    # the dump renders as Prometheus text without error
    assert "repro_server_queries_total" in stats.prometheus()


def test_answers_and_snapshot_bit_identical_with_tracing(tmp_path):
    """The hard constraint: tracing/metrics on vs off changes nothing
    about answers or persisted snapshots."""
    graph = _graph(56, seed=5)
    scheme = SketchConnectivityScheme(graph, seed=2)
    pairs = [(i, (i * 7 + 1) % graph.n) for i in range(24)]
    faults = [0, 3, 5]
    expected = scheme.query_many(pairs, faults, want_path=True)

    digests = {}
    answers = {}
    for metrics in (False, True):
        path = tmp_path / f"snap-{metrics}.ftl"
        save_snapshot(path, scheme)
        digests[metrics] = hashlib.sha256(path.read_bytes()).hexdigest()
        with ServerThread(
            scheme, num_shards=2, metrics=metrics, slow_threshold_s=0.0
        ) as srv:
            with QueryClient("127.0.0.1", srv.port, timeout=60) as client:
                answers[metrics] = client.connectivity(
                    pairs, faults, want_path=True, trace_id=mint_trace_id()
                )
                untraced = client.connectivity(pairs, faults, want_path=True)
        assert answers[metrics] == untraced
    assert digests[False] == digests[True]
    assert answers[False] == answers[True] == expected


def test_trace_and_slow_log_units():
    trace = Trace(trace_id=0x42)
    with trace.span("work"):
        pass
    trace.add_span("tail", trace.t0, 0.001)
    d = trace.to_dict()
    assert d["trace_id"] == f"{0x42:016x}"
    assert [s["name"] for s in d["spans"]] == ["work", "tail"]
    log = SlowQueryLog(capacity=2, threshold_s=0.0)
    for i in range(3):
        assert log.record(Trace(trace_id=i + 1), request_id=i)
    snap = log.snapshot()
    assert snap["recorded"] == 3
    assert len(snap["entries"]) == 2  # ring evicted the oldest
    assert snap["entries"][-1]["request_id"] == 2
    fast = SlowQueryLog(capacity=2, threshold_s=10.0)
    assert not fast.record(Trace())  # under threshold -> dropped
    assert len(fast) == 0


def test_loadreport_merges_histograms_exactly():
    from repro.traffic.loadgen import LoadReport

    combined = LoadReport(workers=2)
    solo = LoadReport(workers=2)
    a, b = LoadReport(), LoadReport()
    for i in range(200):
        ms = 0.1 + (i % 37) * 0.5
        (a if i % 2 else b).record(ms)
        solo.record(ms)
        combined.requests = solo.requests = 200
    a.requests, b.requests = 100, 100
    combined.requests = 0
    combined.merge(a)
    combined.merge(b)
    assert combined.requests == 200
    s_combined, s_solo = combined.summary(), solo.summary()
    for key in ("p50_ms", "p90_ms", "p99_ms", "p99_9_ms", "max_ms",
                "latency_buckets"):
        assert s_combined[key] == s_solo[key], key
    # registry dumps built from the same family merge with these too
    assert json.loads(json.dumps(s_combined)) == s_combined
