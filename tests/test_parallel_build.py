"""Bit-identity of the parallel build pipeline (``build_workers``).

The determinism contract of :class:`repro._util.build_pool.BuildPool`
says every ``build_workers`` value must produce *exactly* the serial
reference build: identical label bits, identical ``query_many``
answers, identical route traces, and a byte-identical snapshot.  These
tests pin that contract across worker counts {1, 2, 4} on three
generator families — including a fragmented G(n, m) whose forest has
hundreds of components — on both prefix layouts (dense/m31 via the
graph's own id space, ragged/m61 via a wide ``id_space``), and on the
multi-copy per-copy work partition.

The crash test asserts the other half of the pool contract: a worker
exception surfaces as a clean ``RuntimeError`` in the parent and the
pool is terminated and joined first, so a failed build never leaks
orphan worker processes.
"""

from __future__ import annotations

import hashlib
import multiprocessing

import numpy as np
import pytest

import repro._util.build_pool as build_pool
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph.generators import (
    gnm_random_graph,
    random_connected_graph,
    ring_of_cliques,
)
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.store import save_snapshot

WORKER_LADDER = [1, 2, 4]

#: name -> (graph factory, id_space).  The wide id space on the random
#: family forces the Mersenne-61 ragged layout, where single-copy
#: builds partition by unit range; the others stay on the dense m31
#: path.  fragmented-gnm has mean degree ~1.4: a giant component plus
#: many small ones (the multi-component forest paths).
FAMILIES = {
    "random-m61": (lambda: random_connected_graph(300, 450, seed=5), 50_000),
    "fragmented-gnm": (lambda: gnm_random_graph(600, 420, seed=7), None),
    "ring-of-cliques": (lambda: ring_of_cliques(12, 8), None),
}


def _build(family: str, workers: int, copies: int = 1):
    factory, id_space = FAMILIES[family]
    graph = factory()
    scheme = SketchConnectivityScheme(
        graph,
        seed=2,
        copies=copies,
        id_space=id_space,
        build_workers=workers,
    )
    return graph, scheme


def _label_digest(scheme) -> str:
    """One hash over every packed label array (EID words + prefix
    stores) — equality means bit-identical label bits."""
    h = hashlib.sha256()
    for name in sorted(scheme.__arrays__()):
        arr = np.ascontiguousarray(scheme.__arrays__()[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _query_signature(graph, scheme):
    rnd = np.random.default_rng(11)
    pairs = [
        (int(s), int(t))
        for s, t in rnd.integers(0, graph.n, size=(24, 2))
        if s != t
    ]
    faults = [int(e) for e in rnd.choice(graph.m, size=3, replace=False)]
    return [
        (
            res.connected,
            res.path.segments if res.path is not None else None,
        )
        for res in scheme.query_many(pairs, faults, want_path=True)
    ]


def _snapshot_sha(tmp_path, scheme, tag: str) -> str:
    path = tmp_path / f"{tag}.ftl"
    save_snapshot(path, scheme)
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_parallel_build_bit_identical(family, tmp_path):
    graph, serial = _build(family, workers=1)
    want_labels = _label_digest(serial)
    want_queries = _query_signature(graph, serial)
    want_sha = _snapshot_sha(tmp_path, serial, f"{family}-w1")
    for workers in WORKER_LADDER[1:]:
        graph_w, parallel = _build(family, workers=workers)
        assert _label_digest(parallel) == want_labels, (family, workers)
        assert _query_signature(graph_w, parallel) == want_queries
        sha = _snapshot_sha(tmp_path, parallel, f"{family}-w{workers}")
        assert sha == want_sha, (family, workers)


def test_parallel_build_multi_copy_bit_identical(tmp_path):
    """copies > 1 switches the work partition from unit ranges to whole
    copies (and feeds the snapshot writer construction-time digests) —
    same contract, different code path."""
    graph, serial = _build("random-m61", workers=1, copies=3)
    want_labels = _label_digest(serial)
    want_sha = _snapshot_sha(tmp_path, serial, "copies3-w1")
    for workers in WORKER_LADDER[1:]:
        _, parallel = _build("random-m61", workers=workers, copies=3)
        assert parallel._prefix_digests  # per-copy digest hints recorded
        assert _label_digest(parallel) == want_labels
        assert _snapshot_sha(tmp_path, parallel, f"copies3-w{workers}") == want_sha


@pytest.mark.parametrize("workers", WORKER_LADDER[1:])
def test_parallel_router_routes_identically(workers, tmp_path):
    """The shared-pool path: one pool spans every (scale, cluster)
    instance of the router's label scheme.  Route traces — hop
    sequences, delivery, lengths, scales — must match the serial
    router's exactly, as must the persisted snapshot."""
    graph = random_connected_graph(220, 330, seed=9)
    rnd = np.random.default_rng(13)
    pairs = [
        (int(s), int(t))
        for s, t in rnd.integers(0, graph.n, size=(12, 2))
        if s != t
    ]
    faults = [int(e) for e in rnd.choice(graph.m, size=2, replace=False)]

    def signature(router):
        return [
            (r.delivered, tuple(r.trace), round(r.length, 9), r.scale)
            for r in router.route_many(pairs, faults)
        ]

    serial = FaultTolerantRouter(graph, f=2, k=2, seed=3, build_workers=1)
    want = signature(serial)
    want_sha = _snapshot_sha(tmp_path, serial, "router-w1")
    parallel = FaultTolerantRouter(graph, f=2, k=2, seed=3, build_workers=workers)
    assert signature(parallel) == want
    assert _snapshot_sha(tmp_path, parallel, f"router-w{workers}") == want_sha


def test_worker_crash_fails_cleanly_without_orphans(monkeypatch):
    """A crashing worker task must surface as RuntimeError in the
    parent — after the pool has been terminated and joined, so no
    worker process outlives the failed build."""
    monkeypatch.setattr(build_pool, "_FAIL_FOR_TEST", "injected worker crash")
    factory, id_space = FAMILIES["random-m61"]
    graph = factory()
    with pytest.raises(RuntimeError, match="injected worker crash"):
        SketchConnectivityScheme(
            graph, seed=2, id_space=id_space, build_workers=2
        )
    monkeypatch.setattr(build_pool, "_FAIL_FOR_TEST", None)
    assert multiprocessing.active_children() == []


def test_serial_reference_never_touches_the_pool(monkeypatch):
    """build_workers=1 is a plain serial loop, not a one-worker pool:
    with the crash hook armed, the serial build still succeeds because
    no pool task ever runs."""
    monkeypatch.setattr(build_pool, "_FAIL_FOR_TEST", "inline crash")
    factory, id_space = FAMILIES["random-m61"]
    graph = factory()
    scheme = SketchConnectivityScheme(graph, seed=2, id_space=id_space)
    assert scheme is not None
