"""Tests for the one-decode-many-queries partition API."""

import random

import pytest

from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.oracles import ConnectivityOracle
from tests.conftest import random_fault_sets


class TestPartition:
    def test_partition_answers_all_pairs(self):
        g = generators.random_connected_graph(30, extra_edges=36, seed=3)
        scheme = SketchConnectivityScheme(g, seed=4)
        oracle = ConnectivityOracle(g)
        for faults in random_fault_sets(g, 25, 5, seed=5):
            fl = [scheme.edge_label(ei) for ei in faults]
            part = scheme.decode_partition_labels(0, fl)
            labels = [scheme.vertex_label(v) for v in range(g.n)]
            for u in range(0, g.n, 3):
                for v in range(0, g.n, 4):
                    expected = oracle.connected(u, v, faults)
                    assert part.same_component(labels[u], labels[v]) == expected

    def test_group_count_matches_true_components(self):
        g = generators.ring_of_cliques(5, 3)
        scheme = SketchConnectivityScheme(g, seed=6)
        ring = [e.index for e in g.edges if e.u // 3 != e.v // 3]
        # Two ring cuts split the ring into two arcs.
        faults = [ring[0], ring[2]]
        from repro.graph.components import connected_components

        _, true_count = connected_components(g, faults)
        fl = [scheme.edge_label(ei) for ei in faults]
        part = scheme.decode_partition_labels(0, fl)
        assert true_count == 2
        # The partition's group count over T\F components matches.
        assert part.group_count == true_count

    def test_no_tree_faults_single_group(self):
        g = generators.random_connected_graph(20, extra_edges=40, seed=7)
        scheme = SketchConnectivityScheme(g, seed=8)
        tree = scheme.trees[0]
        non_tree = [
            e.index for e in g.edges if not tree.is_tree_edge(e.index)
        ][:4]
        part = scheme.decode_partition_labels(0, [scheme.edge_label(ei) for ei in non_tree])
        assert part.group_count == 1
        a = scheme.vertex_label(0)
        b = scheme.vertex_label(g.n - 1)
        assert part.same_component(a, b)

    def test_other_component_vertex_returns_none(self):
        from repro.graph.graph import Graph

        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        scheme = SketchConnectivityScheme(g, seed=9)
        part = scheme.decode_partition_labels(0, [])
        other = scheme.vertex_label(3)
        assert other.component != 0
        assert part.group(other) is None
        assert not part.same_component(scheme.vertex_label(0), other)

    def test_wrong_component_query_raises(self):
        from repro.graph.graph import Graph

        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        scheme = SketchConnectivityScheme(g, seed=10)
        part = scheme.decode_partition_labels(0, [])
        a, b = scheme.vertex_label(3), scheme.vertex_label(4)
        with pytest.raises(ValueError):
            part.same_component(a, b)

    def test_partition_consistent_with_decode(self):
        g = generators.random_connected_graph(26, extra_edges=30, seed=11)
        scheme = SketchConnectivityScheme(g, seed=12)
        rnd = random.Random(13)
        for faults in random_fault_sets(g, 20, 4, seed=14):
            fl = [scheme.edge_label(ei) for ei in faults]
            part = scheme.decode_partition_labels(0, fl)
            s, t = rnd.sample(range(g.n), 2)
            direct = scheme.query(s, t, faults).connected
            via_part = part.same_component(
                scheme.vertex_label(s), scheme.vertex_label(t)
            )
            assert direct == via_part
