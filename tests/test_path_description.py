"""Tests for the succinct path description (Lemma 3.17, Figure 3)."""

import pytest

from repro.core.path_description import PathSegment, SuccinctPath
from repro.graph import generators
from repro.graph.spanning_tree import RootedTree


@pytest.fixture
def setting():
    g = generators.grid_graph(3, 3)
    tree = RootedTree.bfs(g, root=0)
    return g, tree


class TestExpand:
    def test_tree_segment_expands_to_tree_path(self, setting):
        g, tree = setting
        path = SuccinctPath(0, 8, (PathSegment(kind="tree", x=0, y=8),))
        vertices = path.expand(g, tree)
        assert vertices == tree.tree_path(0, 8)

    def test_alternating_segments(self, setting):
        g, tree = setting
        # 0 -> (tree) -> 1, edge (1,4), (tree) 4 -> 8.
        path = SuccinctPath(
            0,
            8,
            (
                PathSegment(kind="tree", x=0, y=1),
                PathSegment(kind="edge", x=1, y=4),
                PathSegment(kind="tree", x=4, y=8),
            ),
        )
        vertices = path.expand(g, tree)
        assert vertices[0] == 0 and vertices[-1] == 8
        assert (1, 4) in list(zip(vertices, vertices[1:]))

    def test_empty_path(self, setting):
        g, tree = setting
        path = SuccinctPath(4, 4, ())
        assert path.expand(g, tree) == [4]

    def test_rejects_non_edge(self, setting):
        g, tree = setting
        path = SuccinctPath(0, 8, (PathSegment(kind="edge", x=0, y=8),))
        with pytest.raises(ValueError):
            path.expand(g, tree)

    def test_rejects_discontinuous_segments(self, setting):
        g, tree = setting
        path = SuccinctPath(
            0, 8, (PathSegment(kind="tree", x=0, y=1), PathSegment(kind="tree", x=2, y=8))
        )
        with pytest.raises(ValueError):
            path.expand(g, tree)

    def test_rejects_wrong_terminal(self, setting):
        g, tree = setting
        path = SuccinctPath(0, 8, (PathSegment(kind="tree", x=0, y=5),))
        with pytest.raises(ValueError):
            path.expand(g, tree)

    def test_rejects_unknown_kind(self, setting):
        g, tree = setting
        path = SuccinctPath(0, 1, (PathSegment(kind="warp", x=0, y=1),))
        with pytest.raises(ValueError):
            path.expand(g, tree)


class TestTransforms:
    def test_reversed_swaps_everything(self):
        seg = PathSegment(
            kind="edge", x=1, y=2, port_x=3, port_y=4, tlabel_x=5, tlabel_y=6, eid=9
        )
        rev = seg.reversed()
        assert (rev.x, rev.y) == (2, 1)
        assert (rev.port_x, rev.port_y) == (4, 3)
        assert (rev.tlabel_x, rev.tlabel_y) == (6, 5)
        assert rev.eid == 9

    def test_reversed_path_expands_backwards(self, setting):
        g, tree = setting
        path = SuccinctPath(
            0,
            8,
            (
                PathSegment(kind="tree", x=0, y=1),
                PathSegment(kind="edge", x=1, y=4),
                PathSegment(kind="tree", x=4, y=8),
            ),
        )
        forward = path.expand(g, tree)
        backward = path.reversed().expand(g, tree)
        assert backward == list(reversed(forward))

    def test_weighted_length_matches_expansion(self, setting):
        g, tree = setting
        path = SuccinctPath(
            0,
            8,
            (
                PathSegment(kind="tree", x=0, y=1),
                PathSegment(kind="edge", x=1, y=4),
                PathSegment(kind="tree", x=4, y=8),
            ),
        )
        vertices = path.expand(g, tree)
        total = sum(
            g.weight(g.edge_index_between(a, b))
            for a, b in zip(vertices, vertices[1:])
        )
        assert path.weighted_length(g, tree) == pytest.approx(total)

    def test_recovery_edges(self):
        path = SuccinctPath(
            0,
            5,
            (
                PathSegment(kind="tree", x=0, y=1),
                PathSegment(kind="edge", x=1, y=3),
                PathSegment(kind="edge", x=3, y=5),
            ),
        )
        assert path.recovery_edges() == [(1, 3), (3, 5)]

    def test_bit_length_grows_with_segments(self):
        short = SuccinctPath(0, 1, (PathSegment(kind="tree", x=0, y=1),))
        long = SuccinctPath(
            0,
            3,
            (
                PathSegment(kind="tree", x=0, y=1),
                PathSegment(kind="edge", x=1, y=2, port_x=0, port_y=1),
                PathSegment(kind="tree", x=2, y=3),
            ),
        )
        assert long.bit_length(16) > short.bit_length(16)
