"""Cross-cutting property-based invariants (hypothesis).

These are the paper's structural invariants, checked on randomly drawn
graphs, fault sets and parameters — beyond the per-module unit tests:

* both labeling schemes agree with each other and the oracle;
* decoding is monotone in faults (removing edges never reconnects);
* succinct paths are sound whenever produced;
* distance estimates upper-bound true distances and respect scale
  monotonicity;
* the component partition refines correctly as faults grow.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.oracles import ConnectivityOracle, DistanceOracle
from tests.conftest import graphs_with_queries


@st.composite
def weighted_graphs_with_queries(draw, max_n=16, max_faults=3):
    n = draw(st.integers(4, max_n))
    extra = draw(st.integers(2, 20))
    seed = draw(st.integers(0, 5000))
    base = generators.random_connected_graph(n, extra_edges=extra, seed=seed)
    g = generators.with_random_weights(base, 1, 4, seed=seed + 1)
    s = draw(st.integers(0, n - 1))
    t = draw(st.integers(0, n - 1))
    count = draw(st.integers(0, min(max_faults, g.m)))
    faults = draw(
        st.lists(st.integers(0, g.m - 1), min_size=count, max_size=count, unique=True)
    )
    return g, s, t, faults


class TestSchemeAgreement:
    @settings(max_examples=25, deadline=None)
    @given(graphs_with_queries(max_faults=4, max_n=14))
    def test_both_schemes_agree_with_oracle(self, data):
        g, s, t, faults = data
        oracle = ConnectivityOracle(g)
        cs = CycleSpaceConnectivityScheme(g, f=4, seed=1)
        sk = SketchConnectivityScheme(g, seed=1)
        truth = oracle.connected(s, t, faults)
        assert cs.query(s, t, faults) == truth
        assert sk.query(s, t, faults).connected == truth


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(graphs_with_queries(max_faults=4, max_n=14))
    def test_more_faults_never_reconnect(self, data):
        """If <s,t,F> is disconnected, so is <s,t,F'> for F' >= F."""
        g, s, t, faults = data
        if not faults:
            return
        sk = SketchConnectivityScheme(g, seed=2)
        full = sk.query(s, t, faults).connected
        partial = sk.query(s, t, faults[:-1]).connected
        # connectivity(partial faults) >= connectivity(full faults)
        assert partial or not full


class TestPathSoundness:
    @settings(max_examples=25, deadline=None)
    @given(graphs_with_queries(max_faults=4, max_n=14))
    def test_paths_sound_whenever_produced(self, data):
        g, s, t, faults = data
        sk = SketchConnectivityScheme(g, seed=3)
        res = sk.query(s, t, faults)
        if not res.connected or res.path is None:
            return
        tree = sk.trees[sk.comp_of[s]]
        vertices = res.path.expand(g, tree)
        fset = set(faults)
        assert vertices[0] == s and vertices[-1] == t
        for a, b in zip(vertices, vertices[1:]):
            ei = g.edge_index_between(a, b)
            assert ei is not None and ei not in fset


class TestDistanceInvariants:
    @settings(max_examples=12, deadline=None)
    @given(weighted_graphs_with_queries())
    def test_estimate_sandwich(self, data):
        g, s, t, faults = data
        scheme = DistanceLabelScheme(g, f=3, k=2, seed=4, base_scheme="cycle_space")
        oracle = DistanceOracle(g)
        est = scheme.query(s, t, faults)
        true = oracle.distance(s, t, faults)
        if math.isinf(true):
            assert math.isinf(est)
        else:
            assert true - 1e-9 <= est <= scheme.stretch_bound(len(faults)) * max(true, 0) + 1e-9

    @settings(max_examples=12, deadline=None)
    @given(weighted_graphs_with_queries(max_faults=2))
    def test_estimates_never_shrink_with_faults(self, data):
        """dist(G \\ F') >= dist(G \\ F) for F' >= F, and the estimates
        preserve the trivial direction: faults cannot make the estimate
        drop below the fault-free true distance."""
        g, s, t, faults = data
        scheme = DistanceLabelScheme(g, f=2, k=2, seed=5, base_scheme="cycle_space")
        oracle = DistanceOracle(g)
        est_faulted = scheme.query(s, t, faults)
        base_true = oracle.distance(s, t, [])
        assert est_faulted >= base_true - 1e-9


class TestPartitionRefinement:
    @settings(max_examples=15, deadline=None)
    @given(graphs_with_queries(max_faults=4, max_n=12))
    def test_partition_never_coarser_than_truth(self, data):
        g, _, _, faults = data
        from repro.graph.components import connected_components

        sk = SketchConnectivityScheme(g, seed=6)
        # Only query the component of vertex 0.
        comp0 = sk.comp_of[0]
        fl = [sk.edge_label(ei) for ei in faults]
        part = sk.decode_partition_labels(comp0, fl)
        true_labels, _ = connected_components(g, faults)
        for u in range(g.n):
            for v in range(u + 1, g.n):
                if sk.comp_of[u] != comp0 or sk.comp_of[v] != comp0:
                    continue
                same_true = true_labels[u] == true_labels[v]
                same_part = part.same_component(
                    sk.vertex_label(u), sk.vertex_label(v)
                )
                assert same_part == same_true
