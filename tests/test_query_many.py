"""Batch-vs-scalar equivalence for the packed-store query engine.

The acceptance bar for the batched decoder is *bit-identical answers*:
``query_many`` must return exactly what looping ``query()`` returns —
including succinct paths and Boruvka phase counts for the sketch scheme
— across the five generator families (the high-diameter path family
included) and random fault sets, on both the vectorized engine and
against the retained ``engine="reference"`` seed decoder.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.api import FaultTolerantConnectivity, FaultTolerantDistance
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.forest_scheme import ForestConnectivityScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.oracles import ConnectivityOracle
from repro.oracles.distances import DistanceOracle
from repro.sketches.sketch import MAX_SKETCH_ID_SPACE

FAMILIES = [
    ("random", lambda: generators.random_connected_graph(72, extra_edges=100, seed=21)),
    ("grid", lambda: generators.grid_graph(8, 8)),
    ("ring_of_cliques", lambda: generators.ring_of_cliques(8, 5)),
    (
        "weighted",
        lambda: generators.with_random_weights(
            generators.random_connected_graph(64, extra_edges=90, seed=22), 1, 8, seed=23
        ),
    ),
    # High-diameter: bridge-heavy tree faults exercise the zero-sketch
    # components that run the full phase budget.
    ("path", lambda: generators.grid_graph(1, 96)),
]


def _query_stream(graph, count, max_faults, seed):
    rnd = random.Random(seed)
    pairs, fault_sets = [], []
    for _ in range(count):
        pairs.append(tuple(rnd.sample(range(graph.n), 2)))
        fault_sets.append(rnd.sample(range(graph.m), rnd.randint(0, max_faults)))
    return pairs, fault_sets


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_sketch_query_many_bit_identical(name, make):
    graph = make()
    fast = SketchConnectivityScheme(graph, seed=5)
    ref = SketchConnectivityScheme(graph, seed=5, engine="reference")
    pairs, fault_sets = _query_stream(graph, 80, 6, seed=31)
    batch = fast.query_many(pairs, fault_sets)
    assert len(batch) == len(pairs)
    for (s, t), F, rb in zip(pairs, fault_sets, batch):
        scalar = fast.query(s, t, F)
        seed_res = ref.query(s, t, F)
        # full SkDecodeResult equality: verdict, succinct path, phases
        assert rb == scalar
        assert rb == seed_res


@pytest.mark.parametrize("name,make", FAMILIES[:2], ids=[f[0] for f in FAMILIES[:2]])
def test_sketch_query_many_small_chunks(name, make):
    """Chunk boundaries must not change anything."""
    graph = make()
    fast = SketchConnectivityScheme(graph, seed=7)
    pairs, fault_sets = _query_stream(graph, 50, 5, seed=13)
    assert fast.query_many(pairs, fault_sets, chunk=7) == fast.query_many(
        pairs, fault_sets
    )


def test_sketch_query_many_shared_fault_set():
    graph = generators.random_connected_graph(60, extra_edges=80, seed=9)
    scheme = SketchConnectivityScheme(graph, seed=3)
    rnd = random.Random(4)
    shared = rnd.sample(range(graph.m), 5)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(40)]
    batch = scheme.query_many(pairs, shared)
    for (s, t), rb in zip(pairs, batch):
        assert rb == scheme.query(s, t, shared)


def test_sketch_decode_label_path_matches_seed_decoder():
    graph = generators.random_connected_graph(64, extra_edges=90, seed=17)
    fast = SketchConnectivityScheme(graph, seed=5)
    ref = SketchConnectivityScheme(graph, seed=5, engine="reference")
    rnd = random.Random(23)
    for _ in range(40):
        s, t = rnd.sample(range(graph.n), 2)
        F = rnd.sample(range(graph.m), rnd.randint(0, 5))
        via_labels = fast.decode(
            fast.vertex_label(s),
            fast.vertex_label(t),
            [fast.edge_label(ei) for ei in F],
        )
        seed_res = ref.decode(
            ref.vertex_label(s),
            ref.vertex_label(t),
            [ref.edge_label(ei) for ei in F],
        )
        assert via_labels == seed_res


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_cycle_space_query_many_matches_scalar(name, make):
    graph = make()
    fast = CycleSpaceConnectivityScheme(graph, f=4, seed=5)
    ref = CycleSpaceConnectivityScheme(graph, f=4, seed=5, engine="reference")
    pairs, fault_sets = _query_stream(graph, 60, 4, seed=41)
    batch = fast.query_many(pairs, fault_sets)
    for (s, t), F, rb in zip(pairs, fault_sets, batch):
        assert rb == fast.query(s, t, F)
        assert rb == ref.query(s, t, F)


def test_forest_query_many_matches_scalar():
    graph = generators.random_tree(80, seed=6)
    scheme = ForestConnectivityScheme(graph)
    pairs, fault_sets = _query_stream(graph, 60, 4, seed=8)
    batch = scheme.query_many(pairs, fault_sets)
    oracle = ConnectivityOracle(graph)
    for (s, t), F, rb in zip(pairs, fault_sets, batch):
        assert rb == scheme.query(s, t, F)
        assert rb == scheme.decode(
            scheme.vertex_label(s),
            scheme.vertex_label(t),
            [scheme.edge_label(ei) for ei in F],
        )
        assert rb == oracle.connected(s, t, F)  # forests are exact


@pytest.mark.parametrize("base", ["cycle_space", "sketch"])
def test_distance_query_many_matches_scalar(base):
    graph = generators.with_random_weights(
        generators.random_connected_graph(48, extra_edges=70, seed=12), 1, 6, seed=13
    )
    scheme = DistanceLabelScheme(graph, f=2, k=2, seed=3, base_scheme=base)
    pairs, fault_sets = _query_stream(graph, 40, 2, seed=14)
    batch = scheme.query_many(pairs, fault_sets)
    for (s, t), F, rb in zip(pairs, fault_sets, batch):
        assert rb == scheme.query(s, t, F)


def test_distance_query_many_matches_reference_engine():
    graph = generators.random_connected_graph(40, extra_edges=55, seed=15)
    fast = DistanceLabelScheme(graph, f=2, k=2, seed=4, base_scheme="cycle_space")
    ref = DistanceLabelScheme(
        graph, f=2, k=2, seed=4, base_scheme="cycle_space", engine="reference"
    )
    pairs, fault_sets = _query_stream(graph, 30, 2, seed=16)
    assert fast.query_many(pairs, fault_sets) == ref.query_many(pairs, fault_sets)


def test_facades_query_many():
    graph = generators.random_connected_graph(56, extra_edges=80, seed=19)
    pairs, fault_sets = _query_stream(graph, 30, 3, seed=20)
    for scheme in ("cycle_space", "sketch"):
        conn = FaultTolerantConnectivity(graph, f=3, scheme=scheme, seed=2)
        batch = conn.query_many(pairs, fault_sets)
        for (s, t), F, rb in zip(pairs, fault_sets, batch):
            assert rb == conn.connected(s, t, F)
    dist = FaultTolerantDistance(graph, f=2, k=2, seed=2)
    batch = dist.query_many(pairs, [F[:2] for F in fault_sets])
    for (s, t), F, rb in zip(pairs, fault_sets, batch):
        assert rb == dist.estimate(s, t, F[:2])


def test_facade_budget_check_applies_per_pair():
    graph = generators.random_connected_graph(24, extra_edges=30, seed=3)
    conn = FaultTolerantConnectivity(graph, f=1, scheme="cycle_space", seed=1)
    with pytest.raises(ValueError):
        conn.query_many([(0, 1)], [[0, 1, 2]])


def test_oracle_batched_ground_truth():
    graph = generators.random_connected_graph(48, extra_edges=60, seed=25)
    pairs, fault_sets = _query_stream(graph, 40, 4, seed=26)
    conn = ConnectivityOracle(graph)
    assert conn.connected_many(pairs, fault_sets) == [
        conn.connected(s, t, F) for (s, t), F in zip(pairs, fault_sets)
    ]
    dist = DistanceOracle(graph)
    got = dist.distance_many(pairs, fault_sets)
    want = [dist.distance(s, t, F) for (s, t), F in zip(pairs, fault_sets)]
    assert got == want
    # sketch labels agree with the batched ground truth w.h.p.
    scheme = SketchConnectivityScheme(graph, seed=6)
    verdicts = [r.connected for r in scheme.query_many(pairs, fault_sets)]
    assert verdicts == conn.connected_many(pairs, fault_sets)


def test_scenario_batched_queries():
    graph = generators.random_connected_graph(32, extra_edges=40, seed=27)
    from repro.scenarios import FaultScenario

    sc = FaultScenario(graph, f=2, build_router=False)
    e = graph.edge(0)
    sc.fail(e.u, e.v)
    pairs = [(0, v) for v in range(1, 10)]
    assert sc.connected_many(pairs) == [sc.connected(s, t) for s, t in pairs]
    assert sc.distance_many(pairs) == [sc.distance(s, t) for s, t in pairs]
    summary = sc.health_summary([0, 5, 9])
    assert summary["landmark_pairs"] == 3


def test_sketch_id_space_cap_auto_upgrades_past_m31():
    graph = generators.random_connected_graph(16, extra_edges=10, seed=1)
    # at the m31 cap: the legacy family stays selected
    at_cap = SketchConnectivityScheme(graph, seed=1, id_space=MAX_SKETCH_ID_SPACE)
    assert at_cap.hash_family == "m31"
    # past it: no more ValueError — the scheme upgrades to the 2^61 - 1
    # family and keeps answering queries correctly
    wide = SketchConnectivityScheme(graph, seed=1, id_space=MAX_SKETCH_ID_SPACE + 1)
    assert wide.hash_family == "m61"
    conn = ConnectivityOracle(graph)
    pairs = [(0, v) for v in range(1, 8)]
    faults = [0, 1]
    got = [r.connected for r in wide.query_many(pairs, faults)]
    assert got == conn.connected_many(pairs, [faults] * len(pairs))
    # the m61 ceiling is the remaining hard error
    from repro.sketches.sketch import MAX_SKETCH_ID_SPACE_M61

    with pytest.raises(ValueError, match="exceeds the sketch"):
        SketchConnectivityScheme(
            graph, seed=1, id_space=MAX_SKETCH_ID_SPACE_M61 + 1
        )


def test_empty_and_trivial_batches():
    graph = generators.random_connected_graph(20, extra_edges=20, seed=2)
    scheme = SketchConnectivityScheme(graph, seed=2)
    assert scheme.query_many([], []) == []
    res = scheme.query_many([(3, 3), (0, 1)], [])
    assert res[0].connected and res[1].connected
    assert res[0] == scheme.query(3, 3, [])
    assert res[1] == scheme.query(0, 1, [])


def test_query_many_nonpositive_chunk_still_answers_everything():
    graph = generators.random_connected_graph(20, extra_edges=20, seed=2)
    scheme = SketchConnectivityScheme(graph, seed=2)
    pairs = [(0, 1), (2, 3), (4, 5)]
    expected = scheme.query_many(pairs, [])
    assert scheme.query_many(pairs, [], chunk=0) == expected
    assert scheme.query_many(pairs, [], chunk=-3) == expected


def test_rooted_tree_foreign_subtree_falls_back_to_reference():
    from repro.graph.spanning_tree import RootedTree

    g = generators.grid_graph(16, 16)
    base = RootedTree.bfs(g, 0)
    parent = list(base.parent)
    pedge = list(base.parent_edge)
    # Detach an internal vertex: its subtree now chains to a foreign root.
    victim = next(v for v in range(g.n) if parent[v] >= 0 and base.children[v])
    parent[victim] = -1
    pedge[victim] = -1
    fast = RootedTree(g, 0, parent, pedge)
    ref = RootedTree(g, 0, parent, pedge, engine="reference")
    assert fast.vertices == ref.vertices
    assert fast.tree_edge_indices == ref.tree_edge_indices
    assert fast.depth == ref.depth
