"""Packed-vs-seed equivalence for the batched routing engine.

The acceptance bar for ``route_many`` is *bit-identical route traces*:
delivery status, the full hop sequence (including reversals and their
trace retraces), weighted lengths, delivery scales and every telemetry
counter must equal the retained seed engine
(``FaultTolerantRouter(engine="reference")``) — across the generator
families (the high-diameter path and ring adversaries included), both
table modes, shared and per-message fault sets.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import FaultTolerantRouting
from repro.graph import generators
from repro.graph.graph import Graph
from repro.routing.fault_tolerant import FaultTolerantRouter

FAMILIES = [
    ("random", lambda: generators.random_connected_graph(40, extra_edges=60, seed=21)),
    ("grid", lambda: generators.grid_graph(6, 6)),
    ("ring_of_cliques", lambda: generators.ring_of_cliques(6, 5)),
    (
        "weighted",
        lambda: generators.with_random_weights(
            generators.random_connected_graph(36, extra_edges=50, seed=22), 1, 8, seed=23
        ),
    ),
    # High-diameter adversaries: tree faults force long walks, full
    # reversals and zero-sketch components.
    ("path", lambda: generators.grid_graph(1, 40)),
    ("ring", lambda: generators.torus_graph(3, 12)),
]


def _message_stream(graph, count, max_faults, seed):
    rnd = random.Random(seed)
    pairs, per = [], []
    for _ in range(count):
        s = rnd.randrange(graph.n)
        t = rnd.randrange(graph.n)
        pairs.append((s, t))
        per.append(rnd.sample(range(graph.m), rnd.randint(0, max_faults)))
    return pairs, per


def _assert_identical(packed, reference):
    assert len(packed) == len(reference)
    for p, r in zip(packed, reference):
        assert p.delivered == r.delivered
        assert p.s == r.s and p.t == r.t
        assert p.scale == r.scale
        assert p.length == r.length
        assert p.trace == r.trace
        assert p.telemetry == r.telemetry


@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_route_many_bit_identical(name, make):
    graph = make()
    router = FaultTolerantRouter(graph, f=2, k=2, seed=7)
    pairs, per = _message_stream(graph, 30, 2, seed=31)
    packed = router.route_many(pairs, per, engine="packed")
    reference = router.route_many(pairs, per, engine="reference")
    _assert_identical(packed, reference)


@pytest.mark.parametrize("mode", ["simple", "balanced"])
def test_both_table_modes_bit_identical(mode):
    graph = generators.random_connected_graph(32, extra_edges=48, seed=5)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=6, table_mode=mode)
    pairs, per = _message_stream(graph, 25, 2, seed=8)
    _assert_identical(
        router.route_many(pairs, per, engine="packed"),
        router.route_many(pairs, per, engine="reference"),
    )


def test_shared_fault_set_batch():
    graph = generators.grid_graph(5, 5)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=9)
    rnd = random.Random(10)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(20)]
    shared = rnd.sample(range(graph.m), 2)
    _assert_identical(
        router.route_many(pairs, shared, engine="packed"),
        router.route_many(pairs, shared, engine="reference"),
    )


def test_s_equals_t_messages():
    graph = generators.grid_graph(4, 4)
    router = FaultTolerantRouter(graph, f=1, k=2, seed=11)
    results = router.route_many([(5, 5), (0, 15)], [])
    assert results[0].delivered and results[0].trace == [5]
    assert results[0].telemetry.hops == 0
    assert results[1].delivered


def test_undeliverable_when_target_cut_off():
    """Failing a leaf's only edge must leave it unreachable — in both
    engines, with identical undelivered telemetry."""
    g = Graph(5)
    for v in range(4):
        g.add_edge(v, v + 1)
    g.add_edge(0, 3)  # extra cycle, leaving 4 a leaf behind (3, 4)
    router = FaultTolerantRouter(g, f=1, k=2, seed=12)
    ei = g.edge_index_between(3, 4)
    _assert_identical(
        router.route_many([(0, 4), (4, 0)], [ei], engine="packed"),
        router.route_many([(0, 4), (4, 0)], [ei], engine="reference"),
    )
    assert not router.route_many([(0, 4)], [ei])[0].delivered


def test_reversal_hops_counter_consistency():
    """The Claim 5.6 reversal charge: reversal hops re-walk the forward
    prefix, identically counted by both engines, zero without
    reversals, and never exceeding the total hop count."""
    g = Graph(6)
    for v in range(5):
        g.add_edge(v, v + 1)
    g.add_edge(0, 5)
    router = FaultTolerantRouter(g, f=1, k=2, seed=13)
    ei = g.edge_index_between(4, 5)
    packed = router.route_many([(0, 5), (0, 4)], [ei], engine="packed")
    reference = router.route_many([(0, 5), (0, 4)], [ei], engine="reference")
    _assert_identical(packed, reference)
    for res in packed:
        tel = res.telemetry
        assert tel.reversal_hops <= tel.hops
        if tel.reversals == 0:
            assert tel.reversal_hops == 0
    blocked = packed[0].telemetry
    if blocked.reversals:
        assert blocked.reversal_hops > 0


def test_partition_caches_warm_across_batches():
    """Retry decodes go through the shared partition caches: a second
    identical batch decodes mostly from cache, with identical results."""
    graph = generators.random_connected_graph(30, extra_edges=40, seed=14)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=15)
    pairs, per = _message_stream(graph, 20, 2, seed=16)
    first = router.route_many(pairs, per)
    stats_after_first = router.packed_engine().cache_stats()
    second = router.route_many(pairs, per)
    stats_after_second = router.packed_engine().cache_stats()
    _assert_identical(first, second)
    new_hits = stats_after_second["hits"] - stats_after_first["hits"]
    new_misses = stats_after_second["misses"] - stats_after_first["misses"]
    assert new_misses == 0  # every decode state was already cached
    assert new_hits > 0


def test_route_scalar_delegates_to_packed_batch():
    graph = generators.grid_graph(4, 4)
    router = FaultTolerantRouter(graph, f=1, k=2, seed=17)
    ei = graph.edge_index_between(5, 6)
    one = router.route(4, 7, [ei])
    batch = router.route_many([(4, 7)], [ei])
    assert one.trace == batch[0].trace
    assert one.telemetry == batch[0].telemetry


def test_reuse_copy_ablation_matches_reference():
    graph = generators.random_connected_graph(26, extra_edges=36, seed=18)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=19, reuse_copy=True)
    pairs, per = _message_stream(graph, 15, 2, seed=20)
    _assert_identical(
        router.route_many(pairs, per, engine="packed"),
        router.route_many(pairs, per, engine="reference"),
    )


def test_routing_facade():
    graph = generators.grid_graph(4, 4)
    routing = FaultTolerantRouting(graph, f=1, k=2, seed=21)
    ei = graph.edge_index_between(5, 6)
    res = routing.route(4, 7, [ei])
    assert res.delivered
    batch = routing.route_many([(4, 7), (0, 15)], [ei])
    assert batch[0].trace == res.trace
    assert routing.max_table_bits() > 0
    assert routing.max_label_bits() > 0
    assert routing.stretch_bound(1) > 1


def test_invalid_engine_rejected():
    graph = generators.grid_graph(3, 3)
    with pytest.raises(ValueError):
        FaultTolerantRouter(graph, f=1, k=2, engine="warp")
    router = FaultTolerantRouter(graph, f=1, k=2)
    with pytest.raises(ValueError):
        router.route_many([(0, 1)], [], engine="warp")


def test_invalid_table_mode_rejected_at_construction():
    graph = generators.grid_graph(3, 3)
    with pytest.raises(ValueError):
        FaultTolerantRouter(graph, f=1, k=2, table_mode="bogus")


def test_out_of_range_fault_ids_match_reference():
    """Edge ids outside 0..m-1 never match a real edge on the reference
    engine's set checks; the packed fault masks must ignore them the
    same way (not wrap negatives onto real edges, not raise)."""
    graph = generators.grid_graph(4, 4)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=22)
    ei = graph.edge_index_between(5, 6)
    weird = [ei, graph.m + 5, -1]
    _assert_identical(
        router.route_many([(4, 7), (0, 15)], weird, engine="packed"),
        router.route_many([(4, 7), (0, 15)], weird, engine="reference"),
    )
