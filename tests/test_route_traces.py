"""Tests for route traces: the full vertex walk of the message."""

import random

from repro.graph import generators
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.forbidden_set import ForbiddenSetRouter


def _assert_valid_walk(graph, trace, s, t, faults, delivered):
    assert trace[0] == s
    if delivered:
        assert trace[-1] == t
    fset = set(faults)
    for a, b in zip(trace, trace[1:]):
        ei = graph.edge_index_between(a, b)
        assert ei is not None, f"({a},{b}) is not an edge"
        assert ei not in fset, f"walk used faulty edge ({a},{b})"


class TestFaultTolerantTraces:
    def test_traces_are_valid_walks(self):
        g = generators.random_connected_graph(26, extra_edges=32, seed=4)
        router = FaultTolerantRouter(g, f=2, k=2, seed=5)
        rnd = random.Random(6)
        for _ in range(20):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), 2)
            res = router.route(s, t, faults)
            _assert_valid_walk(g, res.trace, s, t, faults, res.delivered)

    def test_trace_length_matches_weight_on_unit_graphs(self):
        g = generators.grid_graph(4, 4)
        router = FaultTolerantRouter(g, f=1, k=2, seed=7)
        ei = g.edge_index_between(5, 6)
        res = router.route(4, 7, [ei])
        assert res.delivered
        # Each trace step is one unit-weight hop... minus the Γ
        # round-trips, which are sub-messages not on the main walk.
        main_walk_hops = len(res.trace) - 1
        assert main_walk_hops == res.telemetry.hops - 2 * res.telemetry.gamma_queries

    def test_trace_contains_reversal(self):
        from repro.graph.graph import Graph

        g = Graph(6)
        for v in range(5):
            g.add_edge(v, v + 1)
        g.add_edge(0, 5)
        router = FaultTolerantRouter(g, f=1, k=2, seed=8)
        ei = g.edge_index_between(4, 5)
        res = router.route(0, 5, [ei])
        assert res.delivered
        if res.telemetry.reversals:
            # The walk revisits the source after the reversal.
            assert res.trace.count(0) >= 2

    def test_s_equals_t_trace(self):
        g = generators.grid_graph(3, 3)
        router = FaultTolerantRouter(g, f=1, k=2, seed=9)
        res = router.route(4, 4, [])
        assert res.trace == [4]


class TestForbiddenSetTraces:
    def test_traces_are_valid_walks(self):
        g = generators.random_connected_graph(24, extra_edges=30, seed=10)
        router = ForbiddenSetRouter(g, f=2, k=2, seed=11)
        rnd = random.Random(12)
        for _ in range(15):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), 2)
            res = router.route(s, t, faults)
            if res.delivered:
                _assert_valid_walk(g, res.trace, s, t, faults, True)

    def test_trace_weight_equals_reported_length(self):
        base = generators.grid_graph(4, 4)
        g = generators.with_random_weights(base, 1, 5, seed=13)
        router = ForbiddenSetRouter(g, f=1, k=2, seed=14)
        res = router.route(0, 15, [2])
        assert res.delivered
        walked = sum(
            g.weight(g.edge_index_between(a, b))
            for a, b in zip(res.trace, res.trace[1:])
        )
        # No reversals/Γ queries in forbidden-set mode: trace = the route.
        assert walked == res.length
