"""Targeted tests for the segment-routing engine (Section 5.2 mechanics).

These exercise the fault-handling paths individually: faults on
0-segments (non-tree recovery edges), faults on 1-segments (tree
edges), Γ label fetches at high-degree vertices including partially
faulty Γ ports, and the reversal cost accounting.
"""

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.oracles import DistanceOracle
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.network import Network, Telemetry


def _star_with_shortcut(spokes=10):
    """Hub 0 with many children; a detour path around the hub's edge to
    child 1: 1 - (spokes+1) - 2."""
    g = Graph(spokes + 2)
    for v in range(1, spokes + 1):
        g.add_edge(0, v)
    g.add_edge(1, spokes + 1)
    g.add_edge(spokes + 1, 2)
    return g


class TestGammaFetch:
    def test_gamma_query_is_used_on_high_degree_tree(self):
        """f=1 on a degree-10 hub forces Γ fetches in balanced mode when
        a hub child edge fails."""
        g = _star_with_shortcut(10)
        router = FaultTolerantRouter(g, f=1, k=2, seed=3, table_mode="balanced")
        ei = g.edge_index_between(0, 1)
        res = router.route(0, 1, [ei])
        assert res.delivered
        # The detour 0 -> 2 -> 11 -> 1 (or via another child) was used.
        assert res.length >= 3
        # Either the hub stored the label (small blocks) or queried Γ.
        tel = res.telemetry
        assert tel.reversals >= 1

    def test_gamma_fetch_with_faulty_gamma_port(self):
        """A Γ member behind a faulty edge must be skipped."""
        g = _star_with_shortcut(12)
        f = 2
        router = FaultTolerantRouter(g, f=f, k=2, seed=4, table_mode="balanced")
        # Fail the edge to child 1 and one of its likely Γ block-mates.
        e1 = g.edge_index_between(0, 1)
        e2 = g.edge_index_between(0, 2)
        res = router.route(0, 1, [e1, e2])
        # Path 0 -> child -> ... 1 exists via the shortcut (0-3.. no;
        # the only detour is 0 -> 2? which is faulty...). Reachability:
        oracle = DistanceOracle(g)
        import math

        expected = not math.isinf(oracle.distance(0, 1, [e1, e2]))
        assert res.delivered == expected

    def test_simple_mode_never_issues_gamma_queries(self):
        g = _star_with_shortcut(10)
        router = FaultTolerantRouter(g, f=1, k=2, seed=5, table_mode="simple")
        ei = g.edge_index_between(0, 1)
        res = router.route(0, 1, [ei])
        assert res.delivered
        assert res.telemetry.gamma_queries == 0


class TestReversalAccounting:
    def test_reversal_charges_the_forward_prefix(self):
        """On a path graph with the far edge failed, the walk is
        out-and-back: total = 2 * prefix + recovery route."""
        g = Graph(6)
        for v in range(5):
            g.add_edge(v, v + 1)
        g.add_edge(0, 5)  # recovery ring edge
        router = FaultTolerantRouter(g, f=1, k=2, seed=6)
        ei = g.edge_index_between(4, 5)
        res = router.route(0, 5, [ei])
        assert res.delivered
        # Optimal is the direct edge (length 1); the router may first
        # walk toward the break (4 edges), reverse (4 edges), then take
        # the ring edge; or find the edge immediately.
        assert res.length in (1.0, 9.0)
        if res.length == 9.0:
            assert res.telemetry.reversals == 1

    def test_hops_match_weight_on_unit_graphs(self):
        g = generators.grid_graph(4, 4)
        router = FaultTolerantRouter(g, f=1, k=2, seed=7)
        ei = g.edge_index_between(5, 6)
        res = router.route(4, 7, [ei])
        assert res.delivered
        assert res.telemetry.hops == int(res.telemetry.weighted)


class TestNetworkDiscipline:
    def test_route_never_traverses_faulty_edges(self):
        """The simulator raises on faulty traversal, so a completed
        route proves the protocol never crossed a fault."""
        import random

        g = generators.random_connected_graph(24, extra_edges=30, seed=8)
        router = FaultTolerantRouter(g, f=2, k=2, seed=9)
        rnd = random.Random(11)
        for _ in range(20):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), 2)
            router.route(s, t, faults)  # would raise FaultyEdgeError

    def test_telemetry_monotone_in_faults(self):
        g = generators.grid_graph(5, 5)
        router = FaultTolerantRouter(g, f=2, k=2, seed=10)
        base = router.route(0, 24, [])
        ei = g.edge_index_between(12, 13)
        ej = g.edge_index_between(7, 12)
        faulted = router.route(0, 24, [ei, ej])
        assert base.delivered and faulted.delivered
        assert faulted.telemetry.decode_calls >= base.telemetry.decode_calls
