"""End-to-end tests for the Section 5 routing schemes."""

import math
import random

import pytest

from repro.graph import generators
from repro.oracles import DistanceOracle
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.routing.forbidden_set import ForbiddenSetRouter
from tests.conftest import random_fault_sets


def _drill(router, graph, trials, max_faults, seed, stretch_of):
    """Route random (s, t, F); assert delivery + the stretch bound."""
    oracle = DistanceOracle(graph)
    rnd = random.Random(seed)
    delivered = 0
    for faults in random_fault_sets(graph, trials, max_faults, seed + 1):
        s, t = rnd.sample(range(graph.n), 2)
        true = oracle.distance(s, t, faults)
        res = router.route(s, t, faults)
        if math.isinf(true):
            assert not res.delivered
            continue
        assert res.delivered, f"undelivered: s={s} t={t} F={faults}"
        delivered += 1
        bound = stretch_of(len(faults)) * true
        assert res.length <= bound + 1e-9, (
            f"stretch violation: len={res.length} bound={bound} "
            f"s={s} t={t} F={faults}"
        )
    assert delivered > trials // 2


class TestForbiddenSetRouting:
    def test_random_graph(self):
        g = generators.random_connected_graph(28, extra_edges=36, seed=3)
        router = ForbiddenSetRouter(g, f=2, k=2, seed=4)
        _drill(router, g, 40, 2, seed=50, stretch_of=router.stretch_bound)

    def test_weighted_graph(self):
        base = generators.random_connected_graph(24, extra_edges=30, seed=5)
        g = generators.with_random_weights(base, 1, 6, seed=6)
        router = ForbiddenSetRouter(g, f=2, k=2, seed=7)
        _drill(router, g, 30, 2, seed=51, stretch_of=router.stretch_bound)

    def test_grid(self):
        g = generators.grid_graph(5, 5)
        router = ForbiddenSetRouter(g, f=2, k=2, seed=8)
        _drill(router, g, 30, 2, seed=52, stretch_of=router.stretch_bound)

    def test_s_equals_t(self):
        g = generators.grid_graph(4, 4)
        router = ForbiddenSetRouter(g, f=1, k=2, seed=9)
        res = router.route(5, 5, [])
        assert res.delivered and res.length == 0.0

    def test_zero_faults_low_stretch(self):
        g = generators.grid_graph(5, 5)
        router = ForbiddenSetRouter(g, f=1, k=2, seed=10)
        oracle = DistanceOracle(g)
        for s, t in [(0, 24), (2, 20), (6, 18)]:
            res = router.route(s, t, [])
            assert res.delivered
            assert res.length <= router.stretch_bound(0) * oracle.distance(s, t)


class TestFaultTolerantRouting:
    @pytest.mark.parametrize("mode", ["simple", "balanced"])
    def test_random_graph(self, mode):
        g = generators.random_connected_graph(26, extra_edges=34, seed=11)
        router = FaultTolerantRouter(g, f=2, k=2, seed=12, table_mode=mode)
        _drill(router, g, 35, 2, seed=53, stretch_of=router.stretch_bound)

    def test_weighted_graph_balanced(self):
        base = generators.random_connected_graph(22, extra_edges=28, seed=13)
        g = generators.with_random_weights(base, 1, 5, seed=14)
        router = FaultTolerantRouter(g, f=2, k=2, seed=15)
        _drill(router, g, 25, 2, seed=54, stretch_of=router.stretch_bound)

    def test_ring_of_cliques_adversarial(self):
        g = generators.ring_of_cliques(4, 4)
        router = FaultTolerantRouter(g, f=2, k=2, seed=16)
        _drill(router, g, 30, 2, seed=55, stretch_of=router.stretch_bound)

    def test_faults_on_shortest_path_force_detour(self):
        g = generators.grid_graph(4, 4)
        router = FaultTolerantRouter(g, f=1, k=2, seed=17)
        oracle = DistanceOracle(g)
        # Fail an edge on the straight-line path 0..3.
        ei = g.edge_index_between(1, 2)
        res = router.route(0, 3, [ei])
        assert res.delivered
        true = oracle.distance(0, 3, [ei])
        assert true <= res.length <= router.stretch_bound(1) * true

    def test_telemetry_counters(self):
        g = generators.grid_graph(4, 4)
        router = FaultTolerantRouter(g, f=2, k=2, seed=18)
        ei = g.edge_index_between(5, 6)
        res = router.route(4, 7, [ei])
        assert res.delivered
        tel = res.telemetry
        assert tel.decode_calls >= 1
        assert tel.phases >= 1
        assert tel.max_header_bits > 0
        assert tel.hops >= 3

    def test_disconnection_returns_undelivered(self):
        g = generators.cycle_graph(8)
        router = FaultTolerantRouter(g, f=2, k=2, seed=19)
        res = router.route(0, 4, [0, 4])
        assert not res.delivered

    def test_more_faults_than_f_still_often_works(self):
        """The scheme is built for f faults; with more it may fail but
        must never deliver over a faulty edge (the simulator enforces
        this by construction)."""
        g = generators.random_connected_graph(20, extra_edges=30, seed=20)
        router = FaultTolerantRouter(g, f=1, k=2, seed=21)
        rnd = random.Random(9)
        for faults in random_fault_sets(g, 10, 3, seed=56):
            s, t = rnd.sample(range(g.n), 2)
            router.route(s, t, faults)  # must not raise

    def test_zero_fault_bound(self):
        g = generators.grid_graph(3, 3)
        router = FaultTolerantRouter(g, f=0, k=2, seed=22)
        res = router.route(0, 8, [])
        assert res.delivered


class TestBoundsAndSizes:
    def test_stretch_bound_formula(self):
        g = generators.grid_graph(3, 3)
        router = FaultTolerantRouter(g, f=1, k=2, seed=23)
        assert router.stretch_bound(0) == 32 * 2 + 40
        assert router.stretch_bound(1) == (32 * 2 + 40) * 4

    def test_table_and_label_sizes_reported(self):
        g = generators.random_connected_graph(18, extra_edges=22, seed=24)
        router = FaultTolerantRouter(g, f=1, k=2, seed=25)
        assert router.max_table_bits() >= router.table_bits(0) > 0
        assert router.total_table_bits() >= router.max_table_bits()
        assert router.max_label_bits() > 0
        assert router.max_label_bits() < router.max_table_bits()
