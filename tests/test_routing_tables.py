"""Tests for routing labels and tables (Equations (7)-(9), Claim 5.7)."""

import pytest

from repro.core.distance_labels import DistanceLabelScheme
from repro.graph import generators
from repro.graph.graph import Graph
from repro.routing.tables import (
    build_routing_label,
    build_routing_tables,
)


def _scheme(graph, f=2, k=2, gamma=False, seed=3):
    return DistanceLabelScheme(
        graph,
        f,
        k,
        seed=seed,
        base_scheme="sketch",
        copies=f + 1,
        routing=True,
        gamma_f=f if gamma else None,
    )


def _broom(spokes=20, handle=4):
    """A high-degree hub: worst case for per-vertex simple tables."""
    g = Graph(spokes + handle + 1)
    for v in range(1, spokes + 1):
        g.add_edge(0, v)
    prev = 0
    for v in range(spokes + 1, spokes + handle + 1):
        g.add_edge(prev, v)
        prev = v
    return g


class TestTableStructure:
    def test_every_vertex_has_entry_per_containing_tree(self):
        g = generators.random_connected_graph(24, extra_edges=30, seed=5)
        scheme = _scheme(g)
        tables = build_routing_tables(scheme, "simple", 2)
        for key, inst in scheme.instances.items():
            for pv in inst.sub.vertex_to_parent:
                assert key in tables[pv].entries

    def test_simple_mode_stores_all_incident_tree_edges(self):
        g = generators.random_connected_graph(24, extra_edges=30, seed=5)
        scheme = _scheme(g)
        tables = build_routing_tables(scheme, "simple", 2)
        for key, inst in scheme.instances.items():
            tree = inst.tree
            to_parent = inst.sub.vertex_to_parent
            for child in tree.vertices:
                if tree.parent[child] < 0:
                    continue
                gu = to_parent[tree.parent[child]]
                gc = to_parent[child]
                port_u = g.port_of(gu, gc)
                # Both endpoints can look the label up by their own key.
                assert (gu, port_u) in tables[gu].entries[key].edge_labels
                port_c = g.port_of(gc, gu)
                assert (gc, port_c) in tables[gc].entries[key].edge_labels

    def test_balanced_mode_gamma_members_store_labels(self):
        g = _broom()
        scheme = _scheme(g, gamma=True)
        tables = build_routing_tables(scheme, "balanced", 2)
        for key, inst in scheme.instances.items():
            tr = inst.tree_routing
            tree = inst.tree
            to_parent = inst.sub.vertex_to_parent
            for child in tree.vertices:
                if tree.parent[child] < 0:
                    continue
                parent = tree.parent[child]
                gu, gc = to_parent[parent], to_parent[child]
                key_u = (gu, g.port_of(gu, gc))
                for member in tr.gamma_members(child):
                    gm = to_parent[member]
                    assert key_u in tables[gm].entries[key].edge_labels
                # The child always stores its parent edge.
                key_c = (gc, g.port_of(gc, gu))
                assert key_c in tables[gc].entries[key].edge_labels

    def test_invalid_mode_rejected(self):
        g = generators.cycle_graph(6)
        scheme = _scheme(g, f=1)
        with pytest.raises(ValueError):
            build_routing_tables(scheme, "huge", 1)

    def test_non_routing_scheme_rejected(self):
        g = generators.cycle_graph(6)
        plain = DistanceLabelScheme(g, 1, 2, base_scheme="cycle_space")
        with pytest.raises(ValueError):
            build_routing_tables(plain, "simple", 1)


class TestBalancedVsSimpleSizes:
    def test_hub_table_shrinks_in_balanced_mode(self):
        """Claim 5.7: balanced tables are degree-independent."""
        g = _broom(spokes=24, handle=3)
        f = 2
        simple = build_routing_tables(_scheme(g, f=f, seed=1), "simple", f)
        balanced = build_routing_tables(
            _scheme(g, f=f, gamma=True, seed=1), "balanced", f
        )
        hub = 0
        assert balanced[hub].bit_length() < simple[hub].bit_length() / 2

    def test_balanced_stores_bounded_labels_per_tree(self):
        g = _broom(spokes=30, handle=3)
        f = 2
        scheme = _scheme(g, f=f, gamma=True, seed=2)
        tables = build_routing_tables(scheme, "balanced", f)
        for v in g.vertices():
            for key, entry in tables[v].entries.items():
                unique = {id(lab) for lab in entry.edge_labels.values()}
                # Parent edge + O(f) child edges + O(f) sibling edges.
                assert len(unique) <= 2 * (2 * f + 1) + 1


class TestRoutingLabels:
    def test_label_has_entry_per_scale(self):
        g = generators.random_connected_graph(20, extra_edges=25, seed=6)
        scheme = _scheme(g, f=1)
        for v in range(0, g.n, 3):
            label = build_routing_label(scheme, v)
            assert set(label.per_scale) == set(range(scheme.K + 1))
            for i, (j, conn) in label.per_scale.items():
                assert (i, j) in scheme.instances
                assert conn.vid == v  # global id embedded

    def test_label_bits_much_smaller_than_tables(self):
        g = generators.random_connected_graph(20, extra_edges=25, seed=6)
        scheme = _scheme(g, f=1)
        tables = build_routing_tables(scheme, "simple", 1)
        label_bits = build_routing_label(scheme, 0).bit_length()
        table_bits = tables[0].bit_length()
        assert label_bits < table_bits / 5
