"""Tests for the scenario runner, the forest scheme, graph I/O, size
reports and the new generators."""

import io
import math
import random

import pytest

from repro.core.forest_scheme import ForestConnectivityScheme
from repro.graph import generators
from repro.graph.components import is_connected
from repro.graph.io import read_edge_list, write_edge_list
from repro.oracles import ConnectivityOracle, DistanceOracle
from repro.scenarios import FaultBudgetExceeded, FaultScenario
from repro.sizing.report import SizeReport, connectivity_report, router_report


class TestFaultScenario:
    @pytest.fixture
    def scenario(self):
        g = generators.grid_graph(4, 4)
        return FaultScenario(g, f=2, k=2, seed=3), g

    def test_fail_query_repair_cycle(self, scenario):
        sc, g = scenario
        oracle = ConnectivityOracle(g)
        assert sc.connected(0, 15)
        sc.fail(0, 1)
        sc.fail(0, 4)  # isolates vertex 0
        assert not sc.connected(0, 15)
        assert oracle.connected(0, 15, sc.active_faults) is False
        sc.repair(0, 1)
        assert sc.connected(0, 15)

    def test_budget_enforced(self, scenario):
        sc, _ = scenario
        sc.fail(0, 1)
        sc.fail(1, 2)
        with pytest.raises(FaultBudgetExceeded):
            sc.fail(2, 3)
        sc.repair(0, 1)
        sc.fail(2, 3)  # budget freed

    def test_refailing_same_link_is_idempotent(self, scenario):
        sc, _ = scenario
        sc.fail(0, 1)
        sc.fail(0, 1)
        assert len(sc.active_faults) == 1

    def test_route_against_live_faults(self, scenario):
        sc, g = scenario
        sc.fail(1, 2)
        res = sc.route(0, 3)
        assert res.delivered
        true = DistanceOracle(g).distance(0, 3, sc.active_faults)
        assert res.length >= true

    def test_distance_against_live_faults(self, scenario):
        sc, g = scenario
        sc.fail(1, 2)
        est = sc.distance(0, 3)
        true = DistanceOracle(g).distance(0, 3, sc.active_faults)
        assert est >= true - 1e-9

    def test_log_records_everything(self, scenario):
        sc, _ = scenario
        sc.fail(0, 1)
        sc.connected(0, 15)
        sc.repair(0, 1)
        ops = [r.op for r in sc.log]
        assert ops == ["fail", "connected", "repair"]

    def test_health_summary(self, scenario):
        sc, _ = scenario
        summary = sc.health_summary([0, 3, 12, 15])
        assert summary["reachable_pairs"] == summary["landmark_pairs"] == 6
        assert not summary["partitioned"]
        sc.fail(0, 1)
        sc.fail(0, 4)
        summary = sc.health_summary([0, 15])
        assert summary["partitioned"]

    def test_non_edge_rejected(self, scenario):
        sc, _ = scenario
        with pytest.raises(ValueError):
            sc.fail(0, 15)

    def test_router_optional(self):
        g = generators.grid_graph(3, 3)
        sc = FaultScenario(g, f=1, build_router=False)
        with pytest.raises(RuntimeError):
            sc.route(0, 8)


class TestForestScheme:
    def test_exact_on_random_trees(self):
        rnd = random.Random(5)
        for seed in range(4):
            g = generators.random_tree(30, seed=seed)
            scheme = ForestConnectivityScheme(g)
            oracle = ConnectivityOracle(g)
            for _ in range(40):
                s, t = rnd.sample(range(g.n), 2)
                faults = rnd.sample(range(g.m), rnd.randint(0, 5))
                assert scheme.query(s, t, faults) == oracle.connected(s, t, faults)

    def test_caterpillar(self):
        g = generators.caterpillar_graph(6, 3)
        scheme = ForestConnectivityScheme(g)
        oracle = ConnectivityOracle(g)
        rnd = random.Random(6)
        for _ in range(30):
            s, t = rnd.sample(range(g.n), 2)
            faults = rnd.sample(range(g.m), rnd.randint(0, 4))
            assert scheme.query(s, t, faults) == oracle.connected(s, t, faults)

    def test_forest_with_multiple_trees(self):
        from repro.graph.graph import Graph

        g = Graph(7)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_edge(5, 6)
        scheme = ForestConnectivityScheme(g)
        assert not scheme.query(0, 3, [])
        assert scheme.query(3, 4, [])
        assert not scheme.query(3, 4, [2])

    def test_rejects_cyclic_graph(self):
        with pytest.raises(ValueError):
            ForestConnectivityScheme(generators.cycle_graph(5))

    def test_labels_are_tiny_and_deterministic(self):
        g = generators.random_tree(200, seed=7)
        scheme = ForestConnectivityScheme(g)
        assert scheme.max_vertex_label_bits() <= 20
        assert scheme.max_edge_label_bits() <= 40


class TestGraphIO:
    def test_roundtrip_preserves_ports(self):
        g = generators.with_random_weights(
            generators.random_connected_graph(20, extra_edges=25, seed=8), 1, 5, seed=9
        )
        buf = io.StringIO()
        write_edge_list(g, buf)
        buf.seek(0)
        back = read_edge_list(buf)
        assert back.n == g.n and back.m == g.m
        for e, f in zip(g.edges, back.edges):
            assert (e.u, e.v, e.weight) == (f.u, f.v, f.weight)
        for v in g.vertices():
            assert list(g.incident(v)) == list(back.incident(v))

    def test_file_roundtrip(self, tmp_path):
        g = generators.grid_graph(3, 3)
        path = tmp_path / "grid.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.m == g.m

    def test_comments_and_blanks_ignored(self):
        text = "# a comment\n\nn 3\ne 0 1\n# mid comment\ne 1 2 2.5\n"
        g = read_edge_list(io.StringIO(text))
        assert g.n == 3 and g.m == 2
        assert g.weight(1) == 2.5

    @pytest.mark.parametrize(
        "bad",
        [
            "e 0 1\n",  # edge before header
            "n 3\nn 4\n",  # duplicate header
            "n 3\nz 0 1\n",  # unknown record
            "n 3\ne 0\n",  # malformed edge
            "",  # empty
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            read_edge_list(io.StringIO(bad))


class TestNewGenerators:
    def test_barbell(self):
        g = generators.barbell_graph(4, 3)
        assert is_connected(g)
        # The bridge path is a sequence of cut edges.
        from repro.oracles.distances import shortest_path_distance

        assert shortest_path_distance(g, 0, 4) == 3

    def test_barbell_direct_bridge(self):
        g = generators.barbell_graph(3, 1)
        assert g.has_edge(0, 3)

    def test_caterpillar_structure(self):
        g = generators.caterpillar_graph(5, 2)
        assert g.n == 15
        assert g.m == g.n - 1  # a tree
        assert is_connected(g)

    def test_random_geometric_connected(self):
        for seed in range(3):
            g = generators.random_geometric_graph(30, 0.25, seed=seed)
            assert is_connected(g)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            generators.barbell_graph(1, 1)
        with pytest.raises(ValueError):
            generators.caterpillar_graph(0, 1)


class TestSizeReports:
    def test_percentiles_and_summary(self):
        report = SizeReport(name="x", sizes=tuple(sorted([10, 20, 30, 40, 100])))
        assert report.count == 5
        assert report.total_bits == 200
        assert report.min_bits == 10 and report.max_bits == 100
        assert report.percentile(50) == 30
        assert report.percentile(100) == 100
        assert "p50=30b" in report.summary()
        with pytest.raises(ValueError):
            report.percentile(150)

    def test_empty_report(self):
        report = SizeReport(name="empty", sizes=())
        assert report.max_bits == 0
        assert "empty" in report.summary()

    def test_connectivity_report(self):
        from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme

        g = generators.random_connected_graph(20, extra_edges=25, seed=10)
        scheme = CycleSpaceConnectivityScheme(g, f=2, seed=11)
        reports = connectivity_report(scheme)
        assert reports["vertex_labels"].count == g.n
        assert reports["edge_labels"].count == g.m
        assert reports["edge_labels"].max_bits == scheme.max_edge_label_bits()

    def test_router_report(self):
        from repro.routing.fault_tolerant import FaultTolerantRouter

        g = generators.grid_graph(3, 3)
        router = FaultTolerantRouter(g, f=1, k=2, seed=12)
        reports = router_report(router)
        assert reports["tables"].max_bits == router.max_table_bits()
        assert reports["labels"].count == g.n
