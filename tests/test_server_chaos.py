"""Chaos test: SIGKILL a shard worker under live load.

The promised failure domain (see ``repro/server/server.py``): killing
one spawn-mode shard worker mid-load

* errors exactly the requests in flight on that shard — as clean
  ``SHARD_LOST`` error frames after the chunk timeout, never a hang or
  a traceback;
* leaves every other shard's stream untouched (zero errors);
* heals itself: the pool respawns the worker (the initializer re-opens
  the snapshot mmap) and subsequent answers are bit-identical to
  in-process ``query_many``;
* leaks nothing: every worker process is gone once the server closes.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import time

import pytest

from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.server import AsyncQueryClient, ErrorCode, QueryClient, ServerError
from repro.serving import canonical_fault_key, shard_of
from repro.store import save_snapshot
from tests.server_util import ServerThread

pytestmark = pytest.mark.network

#: server-side chunk timeout: how long a lost chunk takes to surface as
#: SHARD_LOST.  Long enough for a respawned spawn worker to initialize
#: (interpreter + numpy + snapshot open), short enough to keep the test
#: brisk.
CHUNK_TIMEOUT_S = 5.0


@pytest.fixture(scope="module")
def chaos_env(tmp_path_factory):
    graph = generators.random_connected_graph(200, extra_edges=280, seed=51)
    scheme = SketchConnectivityScheme(graph, seed=52)
    snap = str(tmp_path_factory.mktemp("chaos") / "scheme.snap")
    save_snapshot(snap, scheme)
    return graph, scheme, snap


def _fault_set_on_shard(graph, shard: int, num_shards: int, rnd, size=4):
    """A fault set whose canonical key routes to the given shard."""
    while True:
        F = sorted(set(rnd.sample(range(graph.m), size)))
        if shard_of(canonical_fault_key(F), num_shards) == shard:
            return F


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other uid
        return True
    return True


def test_sigkill_shard_worker_errors_inflight_only_then_recovers(chaos_env):
    graph, scheme, snap = chaos_env
    rnd = random.Random(53)
    F0 = _fault_set_on_shard(graph, 0, 2, rnd)
    F1 = _fault_set_on_shard(graph, 1, 2, rnd)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(48)]
    expected0 = scheme.query_many(pairs, F0)
    expected1 = scheme.query_many(pairs, F1)

    with ServerThread(
        snapshot=snap,
        num_shards=2,
        chunk_timeout=CHUNK_TIMEOUT_S,
        deadline_s=60.0,
        # Pin fault sets to their hash shard.  Hot-key replication
        # would deliberately round-robin a dominant fault set across
        # *all* shards (it trades isolation for throughput) — during
        # the post-kill stall the healthy stream becomes dominant and
        # would be replicated onto the dead shard, muddying the
        # isolation property this test asserts.
        hot_key_share=None,
    ) as harness:
        pids_before = harness.server.worker_pids()
        assert len(pids_before) == 2 and all(_alive(p) for p in pids_before)
        victim = pids_before[0]  # pools are indexed by shard

        async def drive():
            errors = {"shard0": [], "shard1": []}
            ok = {"shard0": 0, "shard1": 0}
            ok_after_error = {"shard0": 0}
            stop = asyncio.Event()

            async def stream(name, F, expected):
                client = await AsyncQueryClient.connect(
                    "127.0.0.1", harness.port
                )
                try:
                    while not stop.is_set():
                        try:
                            ans = await client.connectivity(pairs, F)
                        except ServerError as exc:
                            errors[name].append(exc.code)
                            continue
                        # every delivered answer is bit-identical, before,
                        # during and after the kill
                        assert ans == expected
                        ok[name] += 1
                        if errors.get(name):
                            ok_after_error[name] = (
                                ok_after_error.get(name, 0) + 1
                            )
                finally:
                    await client.aclose()

            tasks = [
                asyncio.ensure_future(stream("shard0", F0, expected0)),
                asyncio.ensure_future(stream("shard0", F0, expected0)),
                asyncio.ensure_future(stream("shard0", F0, expected0)),
                asyncio.ensure_future(stream("shard1", F1, expected1)),
            ]
            loop = asyncio.get_running_loop()
            try:
                # let the streams establish: the doomed worker is busy
                t0 = loop.time()
                while ok["shard0"] < 3 and loop.time() - t0 < 30:
                    await asyncio.sleep(0.02)
                assert ok["shard0"] >= 3, "streams never warmed up"

                os.kill(victim, signal.SIGKILL)

                # the in-flight chunks surface as SHARD_LOST ...
                t0 = loop.time()
                while not errors["shard0"] and loop.time() - t0 < 30:
                    await asyncio.sleep(0.05)
                # ... and the shard heals (respawned worker answers)
                t0 = loop.time()
                while not ok_after_error["shard0"] and loop.time() - t0 < 60:
                    await asyncio.sleep(0.05)
            finally:
                stop.set()
                await asyncio.gather(*tasks)
            return errors, ok, ok_after_error

        errors, ok, ok_after_error = harness.run(drive(), timeout=180)

        # in-flight requests on the killed shard: clean SHARD_LOST frames
        assert errors["shard0"], "kill produced no SHARD_LOST error"
        assert all(
            code == ErrorCode.SHARD_LOST for code in errors["shard0"]
        ), f"unexpected error codes: {errors['shard0']}"
        # the other shard's stream never saw a single failure
        assert errors["shard1"] == []
        assert ok["shard1"] > 0
        # the shard healed and answered bit-identically afterwards
        assert ok_after_error["shard0"] > 0

        # respawn visible in the pids: two live workers, victim replaced
        pids_after = harness.server.worker_pids()
        assert len(pids_after) == 2
        assert victim not in pids_after
        assert all(_alive(p) for p in pids_after)

        # belt and braces: a fresh connection answers bit-identically
        with QueryClient("127.0.0.1", harness.port, timeout=60) as client:
            assert client.connectivity(pairs, F0) == expected0
            stats = client.stats()
        assert stats["server"]["errors"].get("SHARD_LOST", 0) >= 1

    # no leaked workers: every worker process is gone after close
    deadline = time.monotonic() + 30
    remaining = set(pids_before + pids_after)
    while remaining and time.monotonic() < deadline:
        remaining = {p for p in remaining if _alive(p)}
        if remaining:
            time.sleep(0.1)
    assert not remaining, f"leaked worker processes: {sorted(remaining)}"
