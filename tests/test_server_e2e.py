"""End-to-end server equivalence: the socket changes nothing.

The acceptance bar of the network tier: every answer that crosses the
wire — connectivity (succinct paths included), distance estimates,
route results (trace + full telemetry) — compares equal (``==``) to
the in-process ``query_many`` / ``route_many`` answer, across the five
generator families, for both a fresh-built backend object and a
snapshot-restored one.

Plus the hot-reload contract: publishing a new snapshot under a live
client stream loses zero requests, flips answers atomically at the
swap, and releases the old snapshot's mmap.
"""

from __future__ import annotations

import asyncio
import random
from pathlib import Path

import pytest

from repro.core.api import FaultTolerantDistance
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.server import AsyncQueryClient, QueryClient
from repro.store import save_snapshot
from tests.server_util import ServerThread

FAMILIES = [
    ("random", lambda: generators.random_connected_graph(72, extra_edges=100, seed=21)),
    ("grid", lambda: generators.grid_graph(8, 8)),
    ("ring_of_cliques", lambda: generators.ring_of_cliques(8, 5)),
    (
        "weighted",
        lambda: generators.with_random_weights(
            generators.random_connected_graph(64, extra_edges=90, seed=22), 1, 8, seed=23
        ),
    ),
    ("path", lambda: generators.grid_graph(1, 96)),
]

_GRAPHS = {}


def _graph(name):
    if name not in _GRAPHS:
        _GRAPHS[name] = dict(FAMILIES)[name]()
    return _GRAPHS[name]


def _stream(graph, count, seed):
    rnd = random.Random(seed)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(count)]
    faults = sorted(set(rnd.sample(range(graph.m), min(3, graph.m))))
    return pairs, faults


@pytest.mark.network
@pytest.mark.parametrize("family", [f[0] for f in FAMILIES])
def test_connectivity_bit_identical_object_and_snapshot(family, tmp_path):
    graph = _graph(family)
    scheme = SketchConnectivityScheme(graph, seed=31)
    pairs, faults = _stream(graph, 16, seed=32)
    expected = scheme.query_many(pairs, faults)
    expected_bare = scheme.query_many(pairs, faults, want_path=False)

    snap = str(tmp_path / "scheme.snap")
    save_snapshot(snap, scheme)

    # Fresh-built backend object, then the snapshot restored from disk.
    for backend_kw in ({"backend": scheme}, {"snapshot": snap}):
        with ServerThread(
            backend_kw.pop("backend", None), **backend_kw
        ) as harness:
            with QueryClient("127.0.0.1", harness.port, timeout=60) as client:
                got = client.connectivity(pairs, faults)
                assert got == expected  # paths, phases — everything
                bare = client.connectivity(pairs, faults, want_path=False)
                assert bare == expected_bare
                # singles ride the coalescer path; same equality
                singles = [
                    client.connectivity([p], faults)[0] for p in pairs[:4]
                ]
                assert singles == expected[:4]


@pytest.mark.network
@pytest.mark.parametrize("family", [f[0] for f in FAMILIES])
def test_distance_bit_identical_object_and_snapshot(family, tmp_path):
    graph = _graph(family)
    dist = FaultTolerantDistance(graph, f=2, k=2, seed=33)
    pairs, faults = _stream(graph, 12, seed=34)
    expected = [float(v) for v in dist.query_many(pairs, faults)]

    snap = str(tmp_path / "dist.snap")
    save_snapshot(snap, dist)

    for backend_kw in ({"backend": dist}, {"snapshot": snap}):
        with ServerThread(
            backend_kw.pop("backend", None), **backend_kw
        ) as harness:
            with QueryClient("127.0.0.1", harness.port, timeout=60) as client:
                got = client.distance(pairs, faults)
                assert got == expected  # float bits survive the wire


@pytest.mark.network
@pytest.mark.parametrize("family", [f[0] for f in FAMILIES])
def test_route_traces_bit_identical_object_and_snapshot(family, tmp_path):
    graph = _graph(family)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=35)
    pairs, faults = _stream(graph, 8, seed=36)
    expected = router.route_many(pairs, faults)

    snap = str(tmp_path / "router.snap")
    save_snapshot(snap, router)

    for backend_kw in ({"backend": router}, {"snapshot": snap}):
        with ServerThread(
            backend_kw.pop("backend", None), **backend_kw
        ) as harness:
            with QueryClient("127.0.0.1", harness.port, timeout=60) as client:
                got = client.route(pairs, faults)
                # RouteResult dataclass equality: trace, telemetry,
                # length, scale — the whole record.
                assert got == expected


@pytest.mark.network
def test_wrong_query_kind_is_unsupported(tmp_path):
    graph = _graph("random")
    scheme = SketchConnectivityScheme(graph, seed=31)
    with ServerThread(scheme) as harness:
        with QueryClient("127.0.0.1", harness.port, timeout=60) as client:
            from repro.server import ServerError

            with pytest.raises(ServerError) as excinfo:
                client.route([(0, 1)], [])
            assert excinfo.value.code.name == "UNSUPPORTED"


def _mapped_paths():
    maps = Path("/proc/self/maps")
    if not maps.exists():  # pragma: no cover - non-Linux
        return None
    return maps.read_text()


@pytest.mark.network
def test_hot_reload_zero_downtime_atomic_flip_and_mmap_release(tmp_path):
    """Publish snapshot v2 under a live stream: no failed request, an
    atomic answer flip, and the old mmap released afterwards."""
    graph = _graph("random")
    s1 = SketchConnectivityScheme(graph, seed=41)
    s2 = SketchConnectivityScheme(graph, seed=42)
    p1 = str(tmp_path / "v1.snap")
    p2 = str(tmp_path / "v2.snap")
    save_snapshot(p1, s1)
    save_snapshot(p2, s2)

    # A probe whose full answer distinguishes the generations (the
    # verdict agrees — same graph — but paths/phases differ by seed).
    rnd = random.Random(43)
    probe = faults = None
    for _ in range(200):
        cand = tuple(rnd.sample(range(graph.n), 2))
        F = sorted(rnd.sample(range(graph.m), 3))
        if s1.query_many([cand], F) != s2.query_many([cand], F):
            probe, faults = cand, F
            break
    assert probe is not None, "seeds 41/42 never diverge — pick new seeds"
    exp1 = s1.query_many([probe], faults)[0]
    exp2 = s2.query_many([probe], faults)[0]

    with ServerThread(snapshot=p1, num_shards=0) as harness:
        before = _mapped_paths()
        if before is not None:
            assert p1 in before, "local mode should mmap the snapshot"

        async def drive():
            client = await AsyncQueryClient.connect("127.0.0.1", harness.port)
            answers = []
            stop = asyncio.Event()

            async def stream():
                while not stop.is_set():
                    ans = await client.connectivity([probe], faults)
                    answers.append(ans[0])

            task = asyncio.ensure_future(stream())
            try:
                await asyncio.sleep(0.05)
                admin = await AsyncQueryClient.connect(
                    "127.0.0.1", harness.port
                )
                try:
                    old_v, new_v, kind = await admin.reload(p2)
                    assert (old_v, new_v, kind) == (1, 2, "sketch")
                    assert await admin.ping() == 2
                finally:
                    await admin.aclose()
                await asyncio.sleep(0.05)
            finally:
                stop.set()
                await asyncio.wait_for(task, timeout=60)
                await client.aclose()
            return answers

        answers = harness.run(drive())

        # Zero failed requests (any ServerError/disconnect would have
        # raised out of the stream task) and a clean, *atomic* flip:
        # a prefix of v1 answers, then only v2 answers.
        assert answers, "stream issued no requests"
        assert all(ans in (exp1, exp2) for ans in answers)
        flips = sum(
            1 for a, b in zip(answers, answers[1:]) if a != b
        )
        assert flips <= 1, "answers flip-flopped across generations"
        assert answers[-1] == exp2, "stream never saw the new generation"

        # One loop round-trip so the retired generation's aclose (and
        # its gc.collect) has certainly run before we inspect maps.
        harness.run(asyncio.sleep(0))
        after = _mapped_paths()
        if after is not None:
            assert p1 not in after, "old snapshot mmap still resident"
            assert p2 in after
