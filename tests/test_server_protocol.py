"""Fuzz and property tests of the server wire protocol.

The contract under test (see ``repro/server/protocol.py``):

* every encodable value tree and every valid frame round-trips
  bit-identically, however the byte stream is chunked;
* truncated streams never yield, never raise, never hang — the decoder
  just waits for more bytes;
* provably-garbage streams (bad magic, wrong version, oversized
  length, unknown type, malformed value trees) raise
  :class:`ProtocolError` — never any other exception — and poison the
  decoder;
* a live server answers garbage with one ``ERROR`` frame and a clean
  connection close, never a traceback or a hung reader, and keeps
  serving subsequent connections.
"""

from __future__ import annotations

import math
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.server import QueryClient
from repro.server.protocol import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    ErrorCode,
    FrameDecoder,
    FrameType,
    ProtocolError,
    decode_value,
    encode_frame,
    encode_value,
)
from tests.server_util import ServerThread

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_leaves = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**200), max_value=2**200),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

_values = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
    ),
    max_leaves=25,
)

_frame_types = st.sampled_from(list(FrameType))
_request_ids = st.integers(min_value=0, max_value=2**64 - 1)


def _drain(decoder: FrameDecoder):
    return list(decoder.frames())


# ----------------------------------------------------------------------
# Value codec round trips
# ----------------------------------------------------------------------
@given(_values)
def test_value_roundtrip(value):
    assert decode_value(encode_value(value)) == value


@given(st.integers(min_value=-(2**512), max_value=2**512))
def test_huge_int_roundtrip(value):
    """Tree-routing labels are arbitrary-precision ints — no 64-bit cap."""
    assert decode_value(encode_value(value)) == value


def test_float_bits_survive():
    for bits in (0.1, -0.0, float("inf"), float("-inf"), 2.0**-1074):
        out = decode_value(encode_value(bits))
        assert struct.pack("!d", out) == struct.pack("!d", bits)
    nan = decode_value(encode_value(float("nan")))
    assert math.isnan(nan)


def test_bool_is_not_int_on_the_wire():
    assert decode_value(encode_value(True)) is True
    assert decode_value(encode_value(1)) == 1
    assert decode_value(encode_value(1)) is not True


@given(_values)
def test_no_trailing_bytes_accepted(value):
    raw = encode_value(value)
    with pytest.raises(ProtocolError):
        decode_value(raw + b"\x00")


# ----------------------------------------------------------------------
# Frame round trips under arbitrary chunking
# ----------------------------------------------------------------------
@given(_frame_types, _request_ids, _values, st.data())
@settings(max_examples=60)
def test_frame_roundtrip_chunked(ftype, request_id, payload, data):
    wire = encode_frame(ftype, request_id, payload)
    cut_count = data.draw(st.integers(0, min(5, len(wire))))
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(0, len(wire)),
                min_size=cut_count,
                max_size=cut_count,
            )
        )
    )
    decoder = FrameDecoder()
    frames = []
    prev = 0
    for cut in cuts + [len(wire)]:
        decoder.feed(wire[prev:cut])
        frames.extend(decoder.frames())
        prev = cut
    assert len(frames) == 1
    frame = frames[0]
    assert frame.type is ftype
    assert frame.request_id == request_id
    assert frame.payload == payload
    assert decoder.buffered == 0


@given(_values, st.integers(min_value=1, max_value=64))
@settings(max_examples=60)
def test_truncated_stream_waits_silently(payload, drop):
    wire = encode_frame(FrameType.CONNECTIVITY, 7, payload)
    drop = min(drop, len(wire) - 1)
    decoder = FrameDecoder()
    decoder.feed(wire[:-drop])
    assert _drain(decoder) == []  # no frame, no exception, no hang
    decoder.feed(wire[-drop:])
    frames = _drain(decoder)
    assert len(frames) == 1 and frames[0].payload == payload


# ----------------------------------------------------------------------
# Garbage: ProtocolError or nothing, never anything else
# ----------------------------------------------------------------------
def _expect_protocol_error(raw: bytes):
    decoder = FrameDecoder()
    decoder.feed(raw)
    with pytest.raises(ProtocolError):
        _drain(decoder)
    # poisoned: the decoder refuses further bytes rather than resyncing
    with pytest.raises(ProtocolError):
        decoder.feed(b"")


def test_bad_magic_rejected():
    good = encode_frame(FrameType.PING, 1)
    _expect_protocol_error(b"XX" + good[2:])


def test_bad_version_rejected():
    good = encode_frame(FrameType.PING, 1)
    _expect_protocol_error(good[:2] + bytes([PROTOCOL_VERSION + 1]) + good[3:])


def test_unknown_frame_type_rejected():
    good = encode_frame(FrameType.PING, 1)
    _expect_protocol_error(good[:3] + b"\xee" + good[4:])


def test_oversized_payload_rejected_at_header():
    header = struct.Struct("!2sBBQI").pack(
        MAGIC, PROTOCOL_VERSION, int(FrameType.PING), 1, MAX_PAYLOAD + 1
    )
    # rejected from the header alone — no payload bytes were ever sent
    _expect_protocol_error(header)


def test_malformed_value_tree_rejected():
    raw = b"\xff\xff\xff"  # unknown value tag
    header = struct.Struct("!2sBBQI").pack(
        MAGIC, PROTOCOL_VERSION, int(FrameType.PING), 1, len(raw)
    )
    _expect_protocol_error(header + raw)


@given(st.binary(max_size=200))
@settings(max_examples=200)
def test_arbitrary_bytes_never_traceback(blob):
    """Any byte blob either parses, waits, or raises ProtocolError."""
    decoder = FrameDecoder()
    decoder.feed(blob)
    try:
        _drain(decoder)
    except ProtocolError:
        pass


@given(st.binary(max_size=300))
@settings(max_examples=200)
def test_decode_value_never_tracebacks(blob):
    try:
        decode_value(blob)
    except ProtocolError:
        pass


def test_deep_value_trees_rejected_not_stack_blown():
    nested = None
    for _ in range(2000):
        nested = [nested]
    with pytest.raises(ProtocolError):
        encode_value(nested)


# ----------------------------------------------------------------------
# A live server under garbage (network-marked: watchdogged)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_server():
    graph = generators.random_connected_graph(16, extra_edges=12, seed=5)
    scheme = SketchConnectivityScheme(graph, seed=6)
    with ServerThread(scheme, deadline_s=30.0) as harness:
        yield harness


def _recv_frames(sock: socket.socket, decoder: FrameDecoder):
    """Read until the server closes; returns every decoded frame."""
    frames = []
    while True:
        data = sock.recv(65536)
        if not data:
            return frames, True
        decoder.feed(data)
        frames.extend(decoder.frames())
        if frames:
            return frames, False


@pytest.mark.network
def test_server_answers_garbage_with_error_frame_then_close(tiny_server):
    with socket.create_connection(("127.0.0.1", tiny_server.port), timeout=30) as sock:
        sock.sendall(b"\x00" * 64)  # not even a valid header
        frames, _closed = _recv_frames(sock, FrameDecoder())
        assert len(frames) == 1
        assert frames[0].type is FrameType.ERROR
        code, _message = frames[0].payload
        assert ErrorCode(code) is ErrorCode.BAD_FRAME
        # and then the connection closes — nothing more arrives
        assert sock.recv(65536) == b""


@pytest.mark.network
def test_server_rejects_oversized_header_before_payload(tiny_server):
    with socket.create_connection(("127.0.0.1", tiny_server.port), timeout=30) as sock:
        sock.sendall(
            struct.Struct("!2sBBQI").pack(
                MAGIC, PROTOCOL_VERSION, int(FrameType.PING), 3, MAX_PAYLOAD + 1
            )
        )
        frames, _closed = _recv_frames(sock, FrameDecoder())
        assert frames and frames[0].type is FrameType.ERROR


@pytest.mark.network
def test_server_survives_truncated_frame_and_disconnect(tiny_server):
    wire = encode_frame(FrameType.PING, 9)
    with socket.create_connection(("127.0.0.1", tiny_server.port), timeout=30) as sock:
        sock.sendall(wire[: HEADER_SIZE + 1])  # abandon mid-frame
    # the server must shrug it off and keep serving
    with QueryClient("127.0.0.1", tiny_server.port, timeout=30) as client:
        assert client.ping() >= 1


@pytest.mark.network
def test_server_keeps_serving_after_garbage_connection(tiny_server):
    with socket.create_connection(("127.0.0.1", tiny_server.port), timeout=30) as sock:
        sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        _frames, _closed = _recv_frames(sock, FrameDecoder())
    with QueryClient("127.0.0.1", tiny_server.port, timeout=30) as client:
        assert client.connected(0, 1, []) in (True, False)
        stats = client.stats()
    assert stats["server"]["protocol_errors"] >= 1
