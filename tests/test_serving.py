"""Serving-layer correctness: caches, coalescers and shards.

The acceptance bar mirrors the batched-engine one: everything the
serving layer answers must be **bit-identical** to the cold decode path
— for the sketch scheme including succinct paths and phase counts —
across the five generator families; on top of that, the layer's own
mechanics (LRU eviction, chunk boundaries, dispatch ordering, process
fan-out) must never reorder or drop an answer.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.api import FaultTolerantConnectivity, FaultTolerantDistance
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.forest_scheme import ForestConnectivityScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.oracles import ConnectivityOracle
from repro.serving import (
    AsyncQueryCoalescer,
    PartitionCache,
    QueryCoalescer,
    ShardedQueryService,
    canonical_fault_key,
)

FAMILIES = [
    ("random", lambda: generators.random_connected_graph(72, extra_edges=100, seed=21)),
    ("grid", lambda: generators.grid_graph(8, 8)),
    ("ring_of_cliques", lambda: generators.ring_of_cliques(8, 5)),
    (
        "weighted",
        lambda: generators.with_random_weights(
            generators.random_connected_graph(64, extra_edges=90, seed=22), 1, 8, seed=23
        ),
    ),
    # High-diameter: bridge-heavy tree faults exercise the zero-sketch
    # components that run the full phase budget.
    ("path", lambda: generators.grid_graph(1, 96)),
]


def _repeated_fault_stream(graph, count, num_sets, max_faults, seed):
    """A round-robin (s, t, F) stream over a small pool of fault sets —
    the workload shape the partition cache exists for.  Fault lists are
    canonical (sorted, deduplicated) so cold and cached paths see the
    same presentation order."""
    rnd = random.Random(seed)
    pool = [
        sorted(set(rnd.sample(range(graph.m), rnd.randint(1, max_faults))))
        for _ in range(num_sets)
    ]
    pairs, per = [], []
    for i in range(count):
        pairs.append(tuple(rnd.sample(range(graph.n), 2)))
        per.append(list(pool[i % num_sets]))
    return pairs, per


# ----------------------------------------------------------------------
# Partition cache: bit-identical answers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_cache_bit_identical_to_cold_decode_sketch(name, make):
    graph = make()
    scheme = SketchConnectivityScheme(graph, seed=5)
    pairs, per = _repeated_fault_stream(graph, 60, 6, 6, seed=31)
    cold = scheme.query_many(pairs, per)  # paths + phase counts included
    cache = PartitionCache(scheme, capacity=8)
    assert cache.query_many(pairs, per) == cold
    assert cache.stats.misses == 6
    # Second pass: all partitions come from the LRU, answers unchanged.
    assert cache.query_many(pairs, per) == cold
    assert cache.stats.misses == 6
    assert cache.stats.hits >= 6


def test_cache_verdicts_for_any_fault_order():
    graph = generators.random_connected_graph(60, extra_edges=80, seed=9)
    scheme = SketchConnectivityScheme(graph, seed=3)
    cache = PartitionCache(scheme, capacity=4)
    rnd = random.Random(7)
    F = rnd.sample(range(graph.m), 6)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(30)]
    cold = scheme.query_many(pairs, F, want_path=False)
    shuffled = list(F)
    rnd.shuffle(shuffled)
    served = cache.query_many(pairs, shuffled + shuffled, want_path=False)
    assert [r.connected for r in served] == [r.connected for r in cold]
    # permutations and duplicates share one canonical entry
    assert canonical_fault_key(shuffled + shuffled) == canonical_fault_key(F)
    assert len(cache) == 1


def test_cache_forest_scheme_exact():
    graph = generators.random_tree(80, seed=6)
    scheme = ForestConnectivityScheme(graph)
    oracle = ConnectivityOracle(graph)
    pairs, per = _repeated_fault_stream(graph, 50, 5, 4, seed=8)
    cache = PartitionCache(scheme)
    got = cache.query_many(pairs, per)
    assert got == scheme.query_many(pairs, per)
    assert got == [
        oracle.connected(s, t, F) for (s, t), F in zip(pairs, per)
    ]


def test_cache_cycle_space_scheme():
    graph = generators.random_connected_graph(72, extra_edges=100, seed=21)
    scheme = CycleSpaceConnectivityScheme(graph, f=4, seed=5)
    pairs, per = _repeated_fault_stream(graph, 50, 5, 4, seed=41)
    cache = PartitionCache(scheme)
    assert cache.query_many(pairs, per) == scheme.query_many(pairs, per)


@pytest.mark.parametrize("base", ["cycle_space", "sketch"])
def test_cache_distance_scheme(base):
    graph = generators.with_random_weights(
        generators.random_connected_graph(48, extra_edges=70, seed=12), 1, 6, seed=13
    )
    scheme = DistanceLabelScheme(graph, f=2, k=2, seed=3, base_scheme=base)
    pairs, per = _repeated_fault_stream(graph, 40, 4, 2, seed=14)
    cache = PartitionCache(scheme)
    assert cache.query_many(pairs, per) == scheme.query_many(pairs, per)
    assert cache.stats.hits == 0 and cache.stats.misses == 4


def test_cache_facades():
    graph = generators.random_connected_graph(56, extra_edges=80, seed=19)
    pairs, per = _repeated_fault_stream(graph, 30, 3, 3, seed=20)
    for scheme_name in ("cycle_space", "sketch"):
        conn = FaultTolerantConnectivity(graph, f=3, scheme=scheme_name, seed=2)
        cache = PartitionCache(conn)
        assert cache.query_many(pairs, per) == conn.query_many(pairs, per)
    dist = FaultTolerantDistance(graph, f=2, k=2, seed=2)
    per2 = [F[:2] for F in per]
    cache = PartitionCache(dist)
    assert cache.query_many(pairs, per2) == dist.query_many(pairs, per2)


def test_cache_lru_eviction():
    graph = generators.random_connected_graph(40, extra_edges=50, seed=4)
    scheme = SketchConnectivityScheme(graph, seed=2)
    cache = PartitionCache(scheme, capacity=2)
    A, B, C = [0], [1], [2]
    cache.partition(A)
    cache.partition(B)
    assert cache.stats.misses == 2 and len(cache) == 2
    part_a = cache.partition(A)  # refreshes A in LRU order
    assert cache.stats.hits == 1
    cache.partition(C)  # evicts B (least recent), not A
    assert cache.stats.evictions == 1
    assert A in cache and C in cache and B not in cache
    assert cache.partition(A) is part_a  # A survived the eviction
    cache.partition(B)  # miss again: B was evicted
    assert cache.stats.misses == 4
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0 and cache.stats.misses == 4


def test_cache_rejects_unsupported_backends():
    with pytest.raises(TypeError):
        PartitionCache(object())
    graph = generators.random_connected_graph(20, extra_edges=20, seed=2)
    with pytest.raises(ValueError):
        PartitionCache(SketchConnectivityScheme(graph, seed=1), capacity=0)


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
def test_coalescer_orders_and_bounds_chunks():
    graph = generators.random_connected_graph(64, extra_edges=90, seed=17)
    scheme = SketchConnectivityScheme(graph, seed=5)
    pairs, per = _repeated_fault_stream(graph, 90, 4, 4, seed=23)
    cold = scheme.query_many(pairs, per)
    dispatched = []

    def backend(chunk_pairs, faults):
        dispatched.append((list(chunk_pairs), tuple(faults)))
        return scheme.query_many(chunk_pairs, faults)

    co = QueryCoalescer(backend, max_chunk=7)
    answers = co.run((s, t, F) for (s, t), F in zip(pairs, per))
    # answers come back in submission order despite out-of-order dispatch
    assert answers == cold
    assert co.pending == 0
    for chunk_pairs, faults in dispatched:
        assert 1 <= len(chunk_pairs) <= 7
        assert faults == canonical_fault_key(faults)  # canonical per chunk
    # size bound reached => eager dispatch: 90 queries over 4 sets makes
    # at least ceil(23/7) full chunks for the most common set
    assert co.stats.chunks == len(dispatched)
    assert co.stats.max_chunk == 7
    assert co.stats.queries == 90


def test_coalescer_chunk_boundary_is_exact():
    graph = generators.random_connected_graph(32, extra_edges=40, seed=3)
    scheme = SketchConnectivityScheme(graph, seed=1)
    sizes = []
    co = QueryCoalescer(
        lambda p, F: (sizes.append(len(p)), scheme.query_many(p, F))[1],
        max_chunk=5,
    )
    tickets = [co.submit(0, v % 31 + 1, [0]) for v in range(5)]
    # exactly at the boundary: the 5th submit dispatched the chunk
    assert sizes == [5]
    assert all(t.done for t in tickets)
    t6 = co.submit(0, 6, [0])
    assert not t6.done and co.pending == 1
    with pytest.raises(RuntimeError):
        t6.result()
    co.flush()
    assert sizes == [5, 1]
    assert t6.result() == scheme.query(0, 6, [0])


def test_coalescer_deadline_with_fake_clock():
    graph = generators.random_connected_graph(32, extra_edges=40, seed=3)
    scheme = SketchConnectivityScheme(graph, seed=1)
    now = [0.0]
    co = QueryCoalescer(
        lambda p, F: scheme.query_many(p, F),
        max_chunk=100,
        max_delay=1.0,
        clock=lambda: now[0],
    )
    early = co.submit(0, 1, [0])
    now[0] = 0.5
    co.submit(0, 2, [1])
    assert not early.done  # younger than the deadline
    now[0] = 1.25
    co.submit(0, 3, [2])  # sweeps the expired [0]-group out
    assert early.done
    assert early.result() == scheme.query(0, 1, [0])
    assert co.pending == 2  # the [1] and [2] groups are still young


def test_async_coalescer_size_and_timer_paths():
    graph = generators.random_connected_graph(64, extra_edges=90, seed=17)
    scheme = SketchConnectivityScheme(graph, seed=5)
    pairs, per = _repeated_fault_stream(graph, 40, 3, 4, seed=29)
    cold = scheme.query_many(pairs, per)

    async def drive():
        ac = AsyncQueryCoalescer(
            scheme.query_many, max_chunk=8, max_delay=0.001
        )
        results = await asyncio.gather(
            *[ac.query(s, t, F) for (s, t), F in zip(pairs, per)]
        )
        assert ac.pending == 0  # gather resolved => everything dispatched
        await ac.aclose()
        return list(results)

    assert asyncio.run(drive()) == cold


def test_async_coalescer_propagates_backend_errors():
    async def drive():
        ac = AsyncQueryCoalescer(_boom, max_chunk=1)
        with pytest.raises(RuntimeError, match="backend down"):
            await ac.query(0, 1, [])
        await ac.aclose()

    def _boom(pairs, faults):
        raise RuntimeError("backend down")

    asyncio.run(drive())


# Regression: a waiter cancelled while its group is still pending (a
# client that disconnected between submit and dispatch) must be
# *scrubbed* from the group.  The original implementation left the
# cancelled future in the ticket list, so the backend's answers were
# zipped against a stale ticket list — every later waiter in the group
# got the wrong answer (or none), and a fully-cancelled group still hit
# the backend with pairs nobody wanted.
def test_async_coalescer_cancelled_waiter_is_scrubbed_before_dispatch():
    seen_chunks = []

    def backend(pairs, faults):
        seen_chunks.append(list(pairs))
        return [(s, t, tuple(faults)) for s, t in pairs]

    async def drive():
        ac = AsyncQueryCoalescer(backend, max_chunk=64, max_delay=0.005)
        waiters = [
            asyncio.ensure_future(ac.query(s, s + 1, [7])) for s in range(6)
        ]
        await asyncio.sleep(0)  # all six buffered into one pending group
        assert ac.pending == 6
        for victim in (waiters[0], waiters[3]):  # head and middle
            victim.cancel()
        survivors = await asyncio.gather(*waiters, return_exceptions=True)
        await ac.aclose()
        return survivors

    results = asyncio.run(drive())
    # the cancelled futures stay cancelled ...
    assert isinstance(results[0], asyncio.CancelledError)
    assert isinstance(results[3], asyncio.CancelledError)
    # ... the survivors all got *their own* answers (alignment intact
    # even though earlier indices were removed) ...
    for s in (1, 2, 4, 5):
        assert results[s] == (s, s + 1, (7,))
    # ... and the backend never saw the scrubbed pairs
    assert seen_chunks == [[(1, 2), (2, 3), (4, 5), (5, 6)]]


def test_async_coalescer_fully_cancelled_group_never_hits_backend():
    calls = []

    def backend(pairs, faults):
        calls.append(list(pairs))
        return [True for _ in pairs]

    async def drive():
        ac = AsyncQueryCoalescer(backend, max_chunk=64, max_delay=0.002)
        waiters = [
            asyncio.ensure_future(ac.query(s, s + 1, [3])) for s in range(4)
        ]
        await asyncio.sleep(0)
        for waiter in waiters:
            waiter.cancel()
        await asyncio.gather(*waiters, return_exceptions=True)
        # the emptied group is gone (timer cancelled, nothing pending)
        assert ac.pending == 0
        # the group key is not poisoned: the same fault set still works
        await asyncio.sleep(0.01)  # outlive the (cancelled) flush timer
        assert await ac.query(0, 1, [3]) is True
        await ac.aclose()

    asyncio.run(drive())
    assert calls == [[(0, 1)]]  # only the post-cancel query dispatched


def test_async_coalescer_cancel_after_dispatch_leaves_chunk_intact():
    """A waiter cancelled *after* its chunk went to an async backend
    just drops its answer; the rest of the chunk is served normally."""
    release = None

    async def backend(pairs, faults):
        await release.wait()  # hold the dispatch so we can cancel mid-flight
        return [s * 100 + t for s, t in pairs]

    async def drive():
        nonlocal release
        release = asyncio.Event()
        ac = AsyncQueryCoalescer(backend, max_chunk=3, max_delay=60.0)
        waiters = [
            asyncio.ensure_future(ac.query(s, s + 1, [])) for s in range(3)
        ]
        await asyncio.sleep(0)  # size trigger dispatched the chunk
        assert ac.pending == 0
        waiters[1].cancel()
        release.set()
        results = await asyncio.gather(*waiters, return_exceptions=True)
        await ac.aclose()
        return results

    results = asyncio.run(drive())
    assert results[0] == 1
    assert isinstance(results[1], asyncio.CancelledError)
    assert results[2] == 203


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------
def test_sharded_service_equals_single_process():
    graph = generators.random_connected_graph(72, extra_edges=100, seed=21)
    scheme = SketchConnectivityScheme(graph, seed=5)
    pairs, per = _repeated_fault_stream(graph, 80, 6, 5, seed=37)
    cold = scheme.query_many(pairs, per)  # succinct paths included
    with ShardedQueryService(scheme, num_shards=2, max_chunk=16) as svc:
        assert svc.mode == "fork"
        assert svc.query_many(pairs, per) == cold
        stats = svc.stats()
        assert stats.queries == 80
        assert sum(stats.per_shard) == 80
        assert stats.chunks >= 6
        assert stats.max_chunk_seen <= 16
        # every shard's cache decoded each of its fault sets exactly once
        assert stats.cache_misses == 6
        # second identical batch: all partition lookups hit
        assert svc.query_many(pairs, per) == cold
        stats = svc.stats()
        assert stats.cache_misses == 6 and stats.cache_hits >= 6


def test_sharded_service_local_fallback_mode():
    graph = generators.random_connected_graph(48, extra_edges=60, seed=11)
    scheme = SketchConnectivityScheme(graph, seed=4)
    pairs, per = _repeated_fault_stream(graph, 40, 4, 4, seed=13)
    cold = scheme.query_many(pairs, per)
    with ShardedQueryService(scheme, num_shards=0) as svc:
        assert svc.mode == "local"
        assert svc.query_many(pairs, per) == cold
        assert svc.stats().queries == 40


def test_sharded_service_distance_scheme():
    graph = generators.with_random_weights(
        generators.random_connected_graph(40, extra_edges=55, seed=15), 1, 6, seed=16
    )
    scheme = DistanceLabelScheme(graph, f=2, k=2, seed=4)
    pairs, per = _repeated_fault_stream(graph, 30, 3, 2, seed=17)
    cold = scheme.query_many(pairs, per)
    with ShardedQueryService(scheme, num_shards=2) as svc:
        assert svc.query_many(pairs, per) == cold


def test_sharded_service_accepts_facades():
    graph = generators.random_connected_graph(40, extra_edges=55, seed=15)
    dist = FaultTolerantDistance(graph, f=2, k=2, seed=4)
    pairs, per = _repeated_fault_stream(graph, 20, 2, 2, seed=18)
    cold = dist.query_many(pairs, per)
    with ShardedQueryService(dist, num_shards=2) as svc:
        # the facade hides its instances behind .impl; the pre-fork
        # warm-up must still reach them (workers inherit built stores)
        assert dist.impl.instances  # sanity: there is something to warm
        assert svc.query_many(pairs, per) == cold


def test_facade_budget_counts_distinct_faults_consistently():
    graph = generators.random_connected_graph(24, extra_edges=30, seed=3)
    conn = FaultTolerantConnectivity(graph, f=2, scheme="cycle_space", seed=1)
    # duplicates are not new faults: both entry points accept them ...
    dup = [0, 0, 1]
    assert conn.query_many([(0, 1)], [dup]) == [
        conn.decode_partition(dup).connected(0, 1)
    ]
    # ... and both reject three distinct faults the same way
    with pytest.raises(ValueError):
        conn.query_many([(0, 1)], [[0, 1, 2]])
    with pytest.raises(ValueError):
        conn.decode_partition([0, 1, 2])


# ----------------------------------------------------------------------
# Scenario + CLI integration
# ----------------------------------------------------------------------
def test_scenario_queries_are_cache_served():
    from repro.scenarios import FaultScenario

    graph = generators.random_connected_graph(32, extra_edges=40, seed=27)
    sc = FaultScenario(graph, f=2, build_router=False)
    e = graph.edge(0)
    sc.fail(e.u, e.v)
    pairs = [(0, v) for v in range(1, 10)]
    direct = sc._conn.query_many(pairs, sc.active_faults)
    assert sc.connected_many(pairs) == direct
    first = sc.health_summary([0, 5, 9])
    second = sc.health_summary([0, 5, 9])
    # same fault set, same landmarks: the second sweep is a pure hit
    assert second["reachable_pairs"] == first["reachable_pairs"]
    cache = second["partition_cache"]
    assert cache["hits"] > first["partition_cache"]["hits"]
    assert cache["misses"] == first["partition_cache"]["misses"]
    # repairing changes the fault state: next query decodes a new set
    sc.repair(e.u, e.v)
    sc.connected(0, 5)
    assert sc.health_summary([0, 5, 9])["partition_cache"]["misses"] > cache["misses"]


def test_cli_serve_bench(capsys):
    from repro.cli import main

    code = main(
        ["serve-bench", "--n", "48", "--queries", "200", "--fault-sets", "4",
         "--chunk", "16"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cold query_many" in out
    assert "coalesced + cached" in out


# ----------------------------------------------------------------------
# PR-4 satellites: deadline flushing inside the service, hot-fault-set
# replication, and the presentation-order cache mode the packed routing
# engine's retry decodes depend on.
# ----------------------------------------------------------------------
def test_presentation_key_cache_preserves_fault_order():
    from repro.serving import presentation_fault_key

    assert presentation_fault_key([7, 3, 7, 1]) == (7, 3, 1)
    graph = generators.random_connected_graph(40, extra_edges=60, seed=61)
    scheme = SketchConnectivityScheme(graph, seed=62)
    rnd = random.Random(63)
    faults = rnd.sample(range(graph.m), 3)
    shuffled = faults[::-1]
    cache = PartitionCache(scheme, canonicalize=False)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(20)]
    # Answers (paths included) equal decoding the faults as presented.
    for F in (faults, shuffled):
        served = cache.query_many(pairs, list(F))
        direct = scheme.query_many(pairs, list(F))
        for a, b in zip(served, direct):
            assert a.connected == b.connected
            assert a.path == b.path
            assert a.phases_used == b.phases_used
    # The two orders are distinct entries (no canonical sharing) ...
    assert len(cache) == 2
    # ... while the canonicalizing cache shares one.
    canon = PartitionCache(scheme, canonicalize=True)
    canon.query_many(pairs, list(faults))
    canon.query_many(pairs, list(shuffled))
    assert len(canon) == 1


def test_service_deadline_flushing():
    graph = generators.grid_graph(5, 5)
    scheme = SketchConnectivityScheme(graph, seed=64)
    fake = [0.0]
    svc = ShardedQueryService(
        scheme, num_shards=2, max_chunk=8, mp_context="none",
        flush_delay=0.5, clock=lambda: fake[0],
    )
    try:
        t1 = svc.submit(0, 24, [1], want_path=False)
        t2 = svc.submit(3, 20, [1], want_path=False)
        assert svc.pending == 2 and not t1.done
        # Young buffers stay pending on further submits...
        fake[0] = 0.2
        t3 = svc.submit(4, 9, [2], want_path=False)
        assert svc.pending == 3
        # ...and flush once the deadline passes (checked on submit).
        fake[0] = 0.8
        t4 = svc.submit(6, 17, [3], want_path=False)
        assert t1.done and t2.done and t3.done
        direct = scheme.query_many([(0, 24)], [[1]], want_path=False)[0]
        assert t1.result().connected == direct.connected
        # the tail drains on flush()
        assert not t4.done
        svc.flush()
        assert t4.done
        assert svc.stats().deadline_flushes >= 2
    finally:
        svc.close()


def test_service_size_bound_still_dispatches_immediately():
    graph = generators.grid_graph(4, 4)
    scheme = SketchConnectivityScheme(graph, seed=65)
    svc = ShardedQueryService(scheme, num_shards=2, max_chunk=2,
                              mp_context="none")
    try:
        t1 = svc.submit(0, 15, [1], want_path=False)
        assert not t1.done
        t2 = svc.submit(2, 13, [1], want_path=False)
        assert t1.done and t2.done  # chunk size bound reached
    finally:
        svc.close()


def test_hot_fault_set_replicates_across_shards():
    graph = generators.random_connected_graph(48, extra_edges=70, seed=66)
    scheme = SketchConnectivityScheme(graph, seed=67)
    rnd = random.Random(68)
    hot = sorted(rnd.sample(range(graph.m), 2))
    cold = sorted(rnd.sample(range(graph.m), 3))
    svc = ShardedQueryService(
        scheme, num_shards=3, max_chunk=16, mp_context="none",
        hot_key_share=0.6, hot_key_min_queries=32,
    )
    try:
        pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(16)]
        expected = [r.connected for r in scheme.query_many(pairs, list(hot))]
        for _ in range(8):
            got = svc.query_many(pairs, list(hot), want_path=False)
            assert [r.connected for r in got] == expected
        svc.query_many(pairs, list(cold), want_path=False)
        stats = svc.stats()
        assert stats.hot_keys == 1
        assert stats.replicated_chunks > 0
        # the hot key's chunks landed on more than one shard
        assert sum(1 for load in stats.per_shard if load > 0) > 1
        # cold keys still pin their hash owner: one extra shard at most
        snap = stats.snapshot()
        assert snap["hot_keys"] == 1
    finally:
        svc.close()


def test_hot_key_replication_disabled():
    graph = generators.grid_graph(4, 4)
    scheme = SketchConnectivityScheme(graph, seed=69)
    svc = ShardedQueryService(
        scheme, num_shards=3, max_chunk=8, mp_context="none",
        hot_key_share=None,
    )
    try:
        for _ in range(10):
            svc.query_many([(0, 15)] * 8, [1], want_path=False)
        stats = svc.stats()
        assert stats.hot_keys == 0
        assert stats.replicated_chunks == 0
        # every chunk went to the single hash owner
        assert sum(1 for load in stats.per_shard if load > 0) == 1
    finally:
        svc.close()


def test_hot_key_replication_fork_mode_identical_answers():
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        pytest.skip("fork unavailable")
    graph = generators.random_connected_graph(40, extra_edges=60, seed=70)
    scheme = SketchConnectivityScheme(graph, seed=71)
    rnd = random.Random(72)
    hot = sorted(rnd.sample(range(graph.m), 2))
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(12)]
    expected = [r.connected for r in scheme.query_many(pairs, list(hot))]
    with ShardedQueryService(
        scheme, num_shards=2, max_chunk=8,
        hot_key_share=0.5, hot_key_min_queries=12,
    ) as svc:
        for _ in range(6):
            got = svc.query_many(pairs, list(hot), want_path=False)
            assert [r.connected for r in got] == expected
        assert svc.stats().hot_keys == 1


# ----------------------------------------------------------------------
# PR-5 satellites: discovery-order cache accounting, cache sizes in
# ServiceStats, and the spawn-mode (snapshot-backed) build/serve split.
# ----------------------------------------------------------------------
def test_presentation_cache_eviction_and_stats_accounting():
    """Hit/miss/eviction counters under discovery-order keys.

    With ``canonicalize=False`` every distinct presentation order is
    its own entry, so permutation traffic both hits and evicts
    differently than the canonical mode; the counters must track the
    actual LRU events.
    """
    graph = generators.random_connected_graph(40, extra_edges=60, seed=81)
    scheme = SketchConnectivityScheme(graph, seed=82)
    rnd = random.Random(83)
    faults = rnd.sample(range(graph.m), 3)
    a, b, c = list(faults), list(faults[::-1]), [faults[1], faults[0], faults[2]]
    cache = PartitionCache(scheme, capacity=2, canonicalize=False)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(8)]

    cache.query_many(pairs, a)  # miss -> {a}
    cache.query_many(pairs, b)  # miss -> {a, b}
    assert (cache.stats.hits, cache.stats.misses, cache.stats.evictions) == (0, 2, 0)
    assert len(cache) == 2

    cache.query_many(pairs, a)  # hit, refreshes a -> LRU order {b, a}
    assert cache.stats.hits == 1
    cache.query_many(pairs, c)  # miss, evicts b (the coldest)
    assert (cache.stats.misses, cache.stats.evictions) == (3, 1)
    assert len(cache) == 2
    assert a in cache and c in cache and b not in cache

    # duplicates collapse into the same discovery-order key: a hit
    cache.query_many(pairs, [a[0], a[0], a[1], a[2], a[1]])
    assert cache.stats.hits == 2
    # re-decoding the evicted order is a fresh miss, evicting again
    cache.query_many(pairs, b)
    assert (cache.stats.misses, cache.stats.evictions) == (4, 2)
    # answers stay bit-identical to the cold decode throughout
    assert cache.query_many(pairs, b) == scheme.query_many(pairs, list(b))


def test_packed_engine_retry_cache_reports_entries():
    """The routing engine's discovery-order caches expose live sizes."""
    from repro.routing.fault_tolerant import FaultTolerantRouter

    graph = generators.random_connected_graph(40, extra_edges=60, seed=84)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=85)
    rnd = random.Random(86)
    msgs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(12)]
    per = [rnd.sample(range(graph.m), 2) for _ in range(12)]
    router.route_many(msgs, per)
    stats = router.packed_engine().cache_stats()
    assert stats["misses"] > 0
    assert stats["entries"] > 0
    assert stats["entries"] <= stats["misses"]  # entries are cached misses
    assert set(stats) == {"caches", "hits", "misses", "evictions", "entries"}


def test_service_stats_expose_cache_entries():
    graph = generators.random_connected_graph(40, extra_edges=60, seed=87)
    scheme = SketchConnectivityScheme(graph, seed=88)
    pairs, per = _repeated_fault_stream(graph, 40, 4, 4, seed=89)
    with ShardedQueryService(scheme, num_shards=2, mp_context="none") as svc:
        svc.query_many(pairs, per)
        stats = svc.stats()
        assert stats.cache_entries == 4  # one live partition per fault set
        snap = stats.snapshot()
        assert snap["cache"]["entries"] == 4
    with ShardedQueryService(scheme, num_shards=2) as svc:  # fork mode
        svc.query_many(pairs, per)
        assert svc.stats().cache_entries == 4


def test_spawn_mode_sharded_service_equals_single_process(tmp_path):
    """The build/serve split: spawn-mode shards answer off a snapshot
    file bit-identically to the in-process scheme — no fork anywhere."""
    from repro.store import save_snapshot

    graph = generators.random_connected_graph(72, extra_edges=100, seed=21)
    scheme = SketchConnectivityScheme(graph, seed=5)
    pairs, per = _repeated_fault_stream(graph, 60, 5, 5, seed=91)
    cold = scheme.query_many(pairs, per)  # succinct paths included
    snap_path = tmp_path / "scheme.snap"
    save_snapshot(snap_path, scheme)
    with ShardedQueryService.from_snapshot(
        snap_path, num_shards=2, max_chunk=16
    ) as svc:
        assert svc.mode == "spawn"
        assert svc.query_many(pairs, per) == cold
        stats = svc.stats()
        assert stats.queries == 60
        assert stats.cache_misses == 5
        assert stats.cache_entries == 5
        # second batch: pure hits, still identical
        assert svc.query_many(pairs, per) == cold
        assert svc.stats().cache_misses == 5


def test_spawn_without_snapshot_degrades_to_local():
    """A spawned worker cannot inherit the scheme; without a snapshot
    the service falls back to in-process shards (same answers)."""
    graph = generators.random_connected_graph(40, extra_edges=60, seed=92)
    scheme = SketchConnectivityScheme(graph, seed=93)
    pairs, per = _repeated_fault_stream(graph, 30, 3, 3, seed=94)
    cold = scheme.query_many(pairs, per)
    with ShardedQueryService(scheme, num_shards=2, mp_context="spawn") as svc:
        assert svc.mode == "local"
        assert svc.query_many(pairs, per) == cold


def test_spawn_mode_bad_snapshot_fails_fast(tmp_path):
    """A missing or corrupt snapshot must raise in the parent, not die
    silently in worker initializers and hang the first query."""
    from repro.store import SnapshotError

    with pytest.raises(SnapshotError):
        ShardedQueryService.from_snapshot(tmp_path / "missing.snap")
    bogus = tmp_path / "bogus.snap"
    bogus.write_bytes(b"not a snapshot at all, certainly not magic")
    with pytest.raises(SnapshotError, match="magic"):
        ShardedQueryService.from_snapshot(bogus)
