"""Tests for the AGM-style linear graph sketches (Section 3.2.1)."""

import numpy as np

from repro.graph import generators
from repro.graph.ancestry import AncestryLabeling
from repro.graph.spanning_tree import RootedTree
from repro.sketches.edge_ids import ExtendedEdgeIds, UidScheme
from repro.sketches.hashing import PairwiseHashFamily
from repro.sketches.sketch import (
    SketchDims,
    VertexSketches,
    edge_key,
    eid_to_words,
    words_to_eid,
)


def _setup(n=24, extra=28, seed=3, units=14):
    g = generators.random_connected_graph(n, extra_edges=extra, seed=seed)
    tree = RootedTree.bfs(g, root=0)
    anc = AncestryLabeling(tree)
    eids = ExtendedEdgeIds(g, UidScheme(seed=seed + 1), anc.label)
    import math

    levels = max(1, math.ceil(math.log2(max(g.m, 2)))) + 1
    words = (eids.total_bits + 63) // 64
    dims = SketchDims(units=units, levels=levels, words=words)
    fam = PairwiseHashFamily(units, levels - 1, seed=seed + 2)
    vs = VertexSketches(g, dims, fam)
    cache = [eids.eid(i) for i in range(g.m)]
    arr = vs.build(lambda ei: cache[ei])
    return g, tree, eids, vs, arr, cache


class TestWordCodec:
    def test_roundtrip(self):
        for value in (0, 1, 1 << 64, (1 << 200) - 12345):
            assert words_to_eid(eid_to_words(value, 4)) == value

    def test_edge_key_canonical(self):
        assert edge_key(10, 7, 3) == edge_key(10, 3, 7) == 37


class TestSampling:
    def test_level_zero_contains_all_edges(self):
        g, _, _, vs, _, _ = _setup()
        for e in g.edges:
            mask = vs.membership_mask(e.u, e.v)
            assert mask[:, 0].all()

    def test_membership_is_prefix_closed(self):
        """e in E_{i,j} implies e in E_{i,j'} for j' < j (nested sampling)."""
        g, _, _, vs, _, _ = _setup()
        for e in g.edges[:20]:
            mask = vs.membership_mask(e.u, e.v)
            for i in range(mask.shape[0]):
                row = mask[i]
                # After the first False, everything is False.
                seen_false = False
                for val in row:
                    if seen_false:
                        assert not val
                    seen_false = seen_false or not val

    def test_sampling_rate_halves_per_level(self):
        g, _, _, vs, _, _ = _setup(n=60, extra=240, seed=9, units=10)
        counts = np.zeros(vs.dims.levels)
        for e in g.edges:
            counts += vs.membership_mask(e.u, e.v).sum(axis=0)
        # Level j should hold about units * m * 2^-j edges.
        total0 = counts[0]
        assert counts[1] < 0.75 * total0
        assert counts[2] < 0.45 * total0


class TestLinearity:
    def test_vertex_set_sketch_cancels_internal_edges(self):
        """The sketch of S only contains edges of the cut (S, V-S)."""
        g, tree, eids, vs, arr, cache = _setup()
        subtree = tree.subtree_vertices(tree.children[0][0])
        sketch = VertexSketches.xor_rows(arr, subtree)
        sset = set(subtree)
        outgoing = [
            e.index for e in g.edges if (e.u in sset) != (e.v in sset)
        ]
        # Rebuild the expected sketch from the outgoing edges directly.
        expected = vs.dims.zeros()
        for ei in outgoing:
            e = g.edge(ei)
            mask = vs.membership_mask(e.u, e.v)
            ew = eid_to_words(cache[ei], vs.dims.words)
            expected ^= np.where(mask[:, :, None], ew[None, None, :], np.uint64(0))
        assert (sketch == expected).all()

    def test_whole_graph_sketch_is_zero(self):
        _, _, _, _, arr, _ = _setup()
        total = VertexSketches.xor_rows(arr, list(range(arr.shape[0])))
        assert not total.any()

    def test_aggregate_subtrees(self):
        g, tree, _, vs, arr, _ = _setup()
        agg = VertexSketches.aggregate_subtrees(tree, arr)
        for v in [0, 1, 5, 9]:
            manual = VertexSketches.xor_rows(arr, tree.subtree_vertices(v))
            assert (agg[v] == manual).all()

    def test_cancel_edge_removes_contribution(self):
        g, tree, eids, vs, arr, cache = _setup()
        subtree = tree.subtree_vertices(tree.children[0][0])
        sset = set(subtree)
        sketch = VertexSketches.xor_rows(arr, subtree)
        outgoing = [e.index for e in g.edges if (e.u in sset) != (e.v in sset)]
        for ei in outgoing:
            e = g.edge(ei)
            vs.cancel_edge(sketch, e.u, e.v, cache[ei])
        assert not sketch.any()


class TestExtraction:
    def test_single_outgoing_edge_recovered(self):
        """Lemma 3.13 in the deterministic case: one outgoing edge."""
        g, tree, eids, vs, arr, cache = _setup()
        # A leaf vertex with degree d: use a set = {leaf}; its sketch is
        # its own edges. Pick a degree-1 vertex if one exists, else make
        # the set the whole graph minus one vertex's neighborhood...
        leaf = next((v for v in g.vertices() if g.degree(v) == 1), None)
        if leaf is None:
            # Fall back: a set with exactly one outgoing edge is the
            # subtree below any bridge; skip if none.
            import pytest

            pytest.skip("no degree-1 vertex in this instance")
        sketch = VertexSketches.xor_rows(arr, [leaf])
        found = 0
        for unit in range(vs.dims.units):
            d = VertexSketches.extract_outgoing(sketch, unit, eids)
            if d is not None:
                assert leaf in (d.u, d.v)
                found += 1
        assert found >= 1

    def test_extraction_from_cut_returns_cut_edge(self):
        g, tree, eids, vs, arr, cache = _setup(n=30, extra=40, seed=6)
        child = tree.children[0][0]
        subtree = tree.subtree_vertices(child)
        sset = set(subtree)
        sketch = VertexSketches.xor_rows(arr, subtree)
        outgoing = {
            frozenset((e.u, e.v))
            for e in g.edges
            if (e.u in sset) != (e.v in sset)
        }
        hits = 0
        for unit in range(vs.dims.units):
            d = VertexSketches.extract_outgoing(sketch, unit, eids)
            if d is not None:
                assert frozenset((d.u, d.v)) in outgoing
                hits += 1
        # With Theta(log n) units, a constant fraction succeed.
        assert hits >= 2

    def test_empty_set_yields_nothing(self):
        g, tree, eids, vs, arr, _ = _setup()
        zero = vs.dims.zeros()
        for unit in range(vs.dims.units):
            assert VertexSketches.extract_outgoing(zero, unit, eids) is None

    def test_dims_accounting(self):
        dims = SketchDims(units=5, levels=7, words=3)
        assert dims.cell_count() == 35
        assert dims.bit_length() == 35 * 3 * 64
        assert dims.zeros().shape == (5, 7, 3)
