"""Tests for the Section 3.2 sketch-based FT connectivity scheme."""

import random

from hypothesis import given, settings

from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.oracles import ConnectivityOracle
from tests.conftest import graphs_with_queries, random_fault_sets


class TestDecodeCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(graphs_with_queries(max_faults=4, max_n=16))
    def test_matches_oracle(self, data):
        g, s, t, faults = data
        scheme = SketchConnectivityScheme(g, seed=5)
        oracle = ConnectivityOracle(g)
        res = scheme.query(s, t, faults)
        assert res.connected == oracle.connected(s, t, faults)

    def test_many_random_queries_large_faults(self):
        """The sketch scheme supports any |F| (labels independent of f)."""
        g = generators.random_connected_graph(48, extra_edges=60, seed=8)
        scheme = SketchConnectivityScheme(g, seed=2)
        oracle = ConnectivityOracle(g)
        rnd = random.Random(77)
        for faults in random_fault_sets(g, 60, 10, seed=66):
            s, t = rnd.sample(range(g.n), 2)
            res = scheme.query(s, t, faults)
            assert res.connected == oracle.connected(s, t, faults)

    def test_ring_of_cliques_bridge_faults(self):
        """Single-edge cuts everywhere — the adversarial family."""
        g = generators.ring_of_cliques(5, 4)
        scheme = SketchConnectivityScheme(g, seed=4)
        oracle = ConnectivityOracle(g)
        bridges = [
            e.index
            for e in g.edges
            if e.u // 4 != e.v // 4  # the ring edges
        ]
        assert len(bridges) == 5
        # Fail two ring edges: the ring splits in two arcs.
        for i in range(5):
            F = [bridges[i], bridges[(i + 2) % 5]]
            for s in (0, 4, 8, 12, 16):
                for t in (0, 4, 8, 12, 16):
                    res = scheme.query(s, t, F)
                    assert res.connected == oracle.connected(s, t, F)

    def test_s_equals_t(self, small_connected):
        scheme = SketchConnectivityScheme(small_connected, seed=1)
        res = scheme.query(3, 3, [0, 1])
        assert res.connected
        assert res.path is not None and res.path.segments == ()

    def test_disconnected_components(self):
        from repro.graph.graph import Graph

        g = Graph(7)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        g.add_edge(5, 6)
        scheme = SketchConnectivityScheme(g, seed=3)
        assert not scheme.query(0, 4, []).connected
        assert scheme.query(3, 6, []).connected
        assert not scheme.query(3, 6, [2]).connected

    def test_duplicate_fault_labels(self):
        g = generators.cycle_graph(10)
        scheme = SketchConnectivityScheme(g, seed=6)
        oracle = ConnectivityOracle(g)
        assert (
            scheme.query(0, 5, [0, 0, 5, 5]).connected
            == oracle.connected(0, 5, [0, 5])
        )


class TestPathOutput:
    def _check_path(self, g, scheme, s, t, faults):
        res = scheme.query(s, t, faults)
        if not res.connected:
            return False
        path = res.path
        assert path is not None
        tree = scheme.trees[scheme.comp_of[s]]
        vertices = path.expand(g, tree)
        assert vertices[0] == s and vertices[-1] == t
        fset = set(faults)
        for a, b in zip(vertices, vertices[1:]):
            ei = g.edge_index_between(a, b)
            assert ei is not None
            assert ei not in fset
        return True

    def test_paths_avoid_faults(self):
        """Lemma 3.17: the succinct path expands to a real fault-free walk."""
        rnd = random.Random(3)
        g = generators.random_connected_graph(36, extra_edges=50, seed=10)
        scheme = SketchConnectivityScheme(g, seed=9)
        connected_count = 0
        for faults in random_fault_sets(g, 80, 6, seed=30):
            s, t = rnd.sample(range(g.n), 2)
            if self._check_path(g, scheme, s, t, faults):
                connected_count += 1
        assert connected_count > 40

    def test_path_has_at_most_f_recovery_edges(self):
        rnd = random.Random(4)
        g = generators.random_connected_graph(30, extra_edges=40, seed=11)
        scheme = SketchConnectivityScheme(g, seed=12)
        for faults in random_fault_sets(g, 60, 5, seed=31):
            s, t = rnd.sample(range(g.n), 2)
            res = scheme.query(s, t, faults)
            if res.connected:
                assert len(res.path.recovery_edges()) <= len(faults)

    def test_recovery_edges_are_non_tree_surviving_edges(self):
        rnd = random.Random(5)
        g = generators.random_connected_graph(30, extra_edges=40, seed=13)
        scheme = SketchConnectivityScheme(g, seed=14)
        tree = scheme.trees[0]
        for faults in random_fault_sets(g, 60, 5, seed=32):
            s, t = rnd.sample(range(g.n), 2)
            res = scheme.query(s, t, faults)
            if not res.connected:
                continue
            for x, y in res.path.recovery_edges():
                ei = g.edge_index_between(x, y)
                assert ei not in set(faults)
                assert not tree.is_tree_edge(ei)


class TestCopies:
    def test_all_copies_decode_correctly(self):
        g = generators.random_connected_graph(28, extra_edges=36, seed=15)
        scheme = SketchConnectivityScheme(g, seed=16, copies=3)
        oracle = ConnectivityOracle(g)
        rnd = random.Random(8)
        for faults in random_fault_sets(g, 30, 4, seed=33):
            s, t = rnd.sample(range(g.n), 2)
            expected = oracle.connected(s, t, faults)
            for copy in range(3):
                assert scheme.query(s, t, faults, copy=copy).connected == expected

    def test_copies_share_eids(self):
        g = generators.random_connected_graph(20, extra_edges=20, seed=17)
        scheme = SketchConnectivityScheme(g, seed=18, copies=2)
        # The EID is the same in all copies (shared S_ID), Section 5.2.
        lab = scheme.edge_label(0)
        assert len(lab.context.sketchers) == 2
        assert lab.eid == scheme.edge_label(0).eid

    def test_rejects_zero_copies(self):
        import pytest

        with pytest.raises(ValueError):
            SketchConnectivityScheme(generators.cycle_graph(4), copies=0)


class TestSizes:
    def test_edge_label_bits_independent_of_fault_count(self):
        """Theorem 3.7: the label length does not depend on f."""
        g = generators.random_connected_graph(40, extra_edges=50, seed=19)
        scheme = SketchConnectivityScheme(g, seed=20)
        bits = scheme.max_edge_label_bits()
        assert bits > 0  # sketches dominate
        # Tree edges carry sketches, non-tree only EIDs.
        tree = scheme.trees[0]
        tree_edge = next(iter(tree.tree_edge_indices))
        non_tree = next(
            e.index for e in g.edges if not tree.is_tree_edge(e.index)
        )
        assert (
            scheme.edge_label(tree_edge).bit_length()
            > 50 * scheme.edge_label(non_tree).bit_length()
        )

    def test_vertex_label_is_small(self):
        g = generators.random_connected_graph(64, extra_edges=64, seed=21)
        scheme = SketchConnectivityScheme(g, seed=22)
        assert scheme.max_vertex_label_bits() < 100

    def test_phases_used_reported(self):
        g = generators.ring_of_cliques(4, 3)
        scheme = SketchConnectivityScheme(g, seed=23)
        ring = [e.index for e in g.edges if e.u // 3 != e.v // 3]
        res = scheme.query(0, 6, ring[:1] + ring[2:3])
        assert res.phases_used >= 1
