"""Snapshot-store correctness: round trips, integrity, compatibility.

The acceptance bar for persistence mirrors the engine-equivalence one:
``load_snapshot(save_snapshot(obj))`` must answer ``query_many`` /
``route_many`` **bit-identically** to the saved object — succinct paths,
phase counts, route traces and telemetry included — across the five
generator families.  On top of that the container itself must reject
corrupted headers, checksum mismatches and format-version skew instead
of serving garbage.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.core.api import (
    FaultTolerantConnectivity,
    FaultTolerantDistance,
    FaultTolerantRouting,
)
from repro.core.cycle_space_scheme import CycleSpaceConnectivityScheme
from repro.core.distance_labels import DistanceLabelScheme
from repro.core.forest_scheme import ForestConnectivityScheme
from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.graph.graph import Graph
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.store import (
    SnapshotError,
    load_snapshot,
    save_snapshot,
    snapshot_info,
    verify_snapshot,
)

FAMILIES = [
    ("random", lambda: generators.random_connected_graph(56, extra_edges=80, seed=21)),
    ("grid", lambda: generators.grid_graph(7, 7)),
    ("ring_of_cliques", lambda: generators.ring_of_cliques(7, 5)),
    (
        "weighted",
        lambda: generators.with_random_weights(
            generators.random_connected_graph(48, extra_edges=70, seed=22), 1, 8, seed=23
        ),
    ),
    # High-diameter adversary: bridge-heavy tree faults.
    ("path", lambda: generators.grid_graph(1, 64)),
]

FAMILY_IDS = [f[0] for f in FAMILIES]


def _queries(graph, count, max_faults, seed):
    rnd = random.Random(seed)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(count)]
    per = [
        rnd.sample(range(graph.m), rnd.randint(0, min(max_faults, graph.m)))
        for _ in range(count)
    ]
    return pairs, per


# ----------------------------------------------------------------------
# Round trips: every scheme, five families, bit-identical answers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,make", FAMILIES, ids=FAMILY_IDS)
def test_sketch_round_trip_bit_identical(name, make, tmp_path):
    graph = make()
    scheme = SketchConnectivityScheme(graph, seed=5)
    pairs, per = _queries(graph, 50, 5, seed=31)
    cold = scheme.query_many(pairs, per)  # paths + phase counts included
    path = tmp_path / "sketch.snap"
    save_snapshot(path, scheme)
    restored = load_snapshot(path)
    assert restored.query_many(pairs, per) == cold
    # the packed stores really are mmap views, not copies
    assert not restored._eid_words.flags.writeable
    assert not restored._prefix[0].flags.writeable
    # partitions (the serving layer's unit of work) agree too
    faults = per[0] or [0]
    part_a = scheme.decode_partition(faults)
    part_b = restored.decode_partition(faults)
    assert part_a.answer_many(pairs) == part_b.answer_many(pairs)


def test_sketch_m61_ragged_round_trip_bit_identical(tmp_path):
    """Format-version-2 payload: m61 family + ragged prefix store.

    A forced-wide identifier space selects the 2^61 - 1 family and the
    change-point prefix layout; the snapshot must persist both choices
    in its meta, rebuild a scheme on the same family, and answer every
    query bit-identically to the in-memory original.
    """
    graph = generators.random_connected_graph(64, extra_edges=96, seed=25)
    scheme = SketchConnectivityScheme(graph, seed=6, id_space=50_000)
    assert scheme.hash_family == "m61"
    assert scheme.prefix_layout == "ragged"
    pairs, per = _queries(graph, 50, 5, seed=35)
    cold = scheme.query_many(pairs, per)
    path = tmp_path / "sketch_m61.snap"
    save_snapshot(path, scheme)
    restored = load_snapshot(path)
    assert restored.hash_family == "m61"
    assert restored.prefix_layout == "ragged"
    assert restored._id_space == 50_000
    assert restored.query_many(pairs, per) == cold
    # the ragged change-point arrays are mmap views, not copies
    assert not restored._prefix[0].keys.flags.writeable
    assert not restored._prefix[0].vals.flags.writeable


def test_sketch_forced_ragged_m31_round_trip(tmp_path):
    """Ragged layout is orthogonal to the family: an m31-sized scheme
    forced onto change-point storage round-trips too."""
    graph = generators.ring_of_cliques(6, 5)
    scheme = SketchConnectivityScheme(graph, seed=8, prefix_layout="ragged")
    assert scheme.hash_family == "m31"
    assert scheme.prefix_layout == "ragged"
    pairs, per = _queries(graph, 40, 4, seed=36)
    cold = scheme.query_many(pairs, per)
    path = tmp_path / "sketch_ragged.snap"
    save_snapshot(path, scheme)
    restored = load_snapshot(path)
    assert restored.prefix_layout == "ragged"
    assert restored.query_many(pairs, per) == cold


@pytest.mark.parametrize("name,make", FAMILIES, ids=FAMILY_IDS)
def test_cycle_space_round_trip_bit_identical(name, make, tmp_path):
    graph = make()
    scheme = CycleSpaceConnectivityScheme(graph, f=3, seed=7)
    pairs, per = _queries(graph, 40, 3, seed=33)
    cold = scheme.query_many(pairs, per)
    path = tmp_path / "cs.snap"
    save_snapshot(path, scheme)
    restored = load_snapshot(path)
    assert restored.query_many(pairs, per) == cold
    assert restored.b == scheme.b
    assert [restored._labels[0].phi(ei) for ei in range(graph.m)] == [
        scheme._labels[0].phi(ei) for ei in range(graph.m)
    ]


def test_forest_round_trip_bit_identical(tmp_path):
    rnd = random.Random(5)
    graph = Graph(40)
    for v in range(1, 40):
        graph.add_edge(rnd.randrange(v), v)
    scheme = ForestConnectivityScheme(graph)
    pairs, per = _queries(graph, 40, 4, seed=35)
    cold = scheme.query_many(pairs, per)
    path = tmp_path / "forest.snap"
    save_snapshot(path, scheme)
    restored = load_snapshot(path)
    assert restored.query_many(pairs, per) == cold


@pytest.mark.parametrize("name,make", FAMILIES, ids=FAMILY_IDS)
def test_distance_round_trip_bit_identical(name, make, tmp_path):
    graph = make()
    scheme = DistanceLabelScheme(graph, f=2, k=2, seed=4)
    pairs, per = _queries(graph, 30, 2, seed=37)
    cold = scheme.query_many(pairs, per)
    path = tmp_path / "dist.snap"
    save_snapshot(path, scheme)
    restored = load_snapshot(path)
    assert restored.query_many(pairs, per) == cold
    # per-fault-set partitions (what the serving cache memoizes)
    faults = [ei for F in per[:4] for ei in F][:2]
    assert restored.decode_partition(faults).answer_many(pairs) == (
        scheme.decode_partition(faults).answer_many(pairs)
    )


def test_distance_cycle_base_round_trip(tmp_path):
    graph = generators.with_random_weights(
        generators.random_connected_graph(40, extra_edges=55, seed=15), 1, 6, seed=16
    )
    scheme = DistanceLabelScheme(graph, f=2, k=2, seed=4, base_scheme="cycle_space")
    pairs, per = _queries(graph, 30, 2, seed=39)
    cold = scheme.query_many(pairs, per)
    path = tmp_path / "distc.snap"
    save_snapshot(path, scheme)
    assert load_snapshot(path).query_many(pairs, per) == cold


@pytest.mark.parametrize("name,make", FAMILIES, ids=FAMILY_IDS)
def test_router_round_trip_bit_identical_traces(name, make, tmp_path):
    graph = make()
    router = FaultTolerantRouter(graph, f=2, k=2, seed=3)
    pairs, per = _queries(graph, 24, 2, seed=41)
    ref = router.route_many(pairs, per)
    path = tmp_path / "router.snap"
    save_snapshot(path, router)
    restored = load_snapshot(path)
    got = restored.route_many(pairs, per)
    for a, b in zip(got, ref):
        assert a.delivered == b.delivered
        assert a.trace == b.trace
        assert a.telemetry == b.telemetry
        assert a.length == b.length
        assert a.scale == b.scale


def test_router_round_trip_reference_engine_agrees(tmp_path):
    """The restored router's lazily rebuilt seed tables stay equivalent."""
    graph = generators.random_connected_graph(48, extra_edges=70, seed=21)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=3)
    pairs, per = _queries(graph, 16, 2, seed=43)
    ref = router.route_many(pairs, per)
    path = tmp_path / "router.snap"
    save_snapshot(path, router)
    restored = load_snapshot(path)
    got = restored.route_many(pairs, per, engine="reference")
    for a, b in zip(got, ref):
        assert a.trace == b.trace and a.telemetry == b.telemetry


# ----------------------------------------------------------------------
# Facades: save() / load()
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme_name", ["sketch", "cycle_space"])
def test_connectivity_facade_save_load(scheme_name, tmp_path):
    graph = generators.random_connected_graph(48, extra_edges=70, seed=11)
    facade = FaultTolerantConnectivity(graph, f=3, scheme=scheme_name, seed=2)
    pairs, per = _queries(graph, 30, 3, seed=45)
    cold = facade.query_many(pairs, per)
    path = tmp_path / "conn.snap"
    facade.save(path)
    restored = FaultTolerantConnectivity.load(path)
    assert restored.scheme_name == scheme_name
    assert restored.f == 3
    assert restored.query_many(pairs, per) == cold
    assert restored.max_vertex_label_bits() == facade.max_vertex_label_bits()


def test_distance_facade_save_load(tmp_path):
    graph = generators.with_random_weights(
        generators.random_connected_graph(40, extra_edges=55, seed=15), 1, 6, seed=16
    )
    facade = FaultTolerantDistance(graph, f=2, k=2, seed=4)
    pairs, per = _queries(graph, 25, 2, seed=47)
    cold = facade.query_many(pairs, per)
    path = tmp_path / "dist.snap"
    facade.save(path)
    restored = FaultTolerantDistance.load(path)
    assert restored.query_many(pairs, per) == cold
    assert restored.stretch_bound(2) == facade.stretch_bound(2)


def test_routing_facade_save_load(tmp_path):
    graph = generators.random_connected_graph(40, extra_edges=55, seed=15)
    facade = FaultTolerantRouting(graph, f=2, k=2, seed=3)
    pairs, per = _queries(graph, 15, 2, seed=49)
    ref = facade.route_many(pairs, per)
    path = tmp_path / "route.snap"
    facade.save(path)
    restored = FaultTolerantRouting.load(path)
    got = restored.route_many(pairs, per)
    for a, b in zip(got, ref):
        assert a.trace == b.trace and a.telemetry == b.telemetry


def test_facade_load_rejects_wrong_kind(tmp_path):
    graph = generators.random_connected_graph(32, extra_edges=40, seed=9)
    facade = FaultTolerantConnectivity(graph, f=2, seed=1)
    path = tmp_path / "conn.snap"
    facade.save(path)
    with pytest.raises(SnapshotError, match="holds a"):
        FaultTolerantDistance.load(path)


# ----------------------------------------------------------------------
# Integrity: header corruption, checksum mismatch, version skew
# ----------------------------------------------------------------------
def _write_small_snapshot(tmp_path):
    graph = generators.random_connected_graph(24, extra_edges=30, seed=3)
    scheme = SketchConnectivityScheme(graph, seed=1)
    path = tmp_path / "victim.snap"
    save_snapshot(path, scheme)
    return path


def test_corrupted_header_rejected(tmp_path):
    path = _write_small_snapshot(tmp_path)
    data = bytearray(path.read_bytes())
    data[0] ^= 0xFF  # clobber the magic
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotError, match="bad magic"):
        load_snapshot(path)


def test_truncated_file_rejected(tmp_path):
    path = _write_small_snapshot(tmp_path)
    path.write_bytes(path.read_bytes()[:20])
    with pytest.raises(SnapshotError):
        load_snapshot(path)


def test_manifest_corruption_rejected(tmp_path):
    path = _write_small_snapshot(tmp_path)
    data = bytearray(path.read_bytes())
    data[70] ^= 0xFF  # inside the JSON manifest
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotError, match="manifest checksum"):
        load_snapshot(path)


def test_segment_checksum_mismatch_rejected(tmp_path):
    path = _write_small_snapshot(tmp_path)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # last payload byte of the last segment
    path.write_bytes(bytes(data))
    # verify_snapshot (and any eager-verify load) must catch it ...
    with pytest.raises(SnapshotError, match="checksum mismatch"):
        verify_snapshot(path)
    with pytest.raises(SnapshotError, match="checksum mismatch"):
        load_snapshot(path, mmap=False)


def test_version_skew_rejected(tmp_path):
    path = _write_small_snapshot(tmp_path)
    data = bytearray(path.read_bytes())
    struct.pack_into("<I", data, 8, 999)  # future format version
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotError, match="version"):
        load_snapshot(path)


def test_unknown_kind_rejected(tmp_path):
    from repro.store import write_snapshot

    path = tmp_path / "alien.snap"
    write_snapshot(path, "alien-artifact", {}, {})
    with pytest.raises(SnapshotError, match="unknown artifact kind"):
        load_snapshot(path)


def test_reference_engine_schemes_refuse_to_snapshot(tmp_path):
    graph = generators.random_connected_graph(24, extra_edges=30, seed=3)
    scheme = SketchConnectivityScheme(graph, seed=1, engine="reference")
    with pytest.raises(SnapshotError, match="csr"):
        save_snapshot(tmp_path / "ref.snap", scheme)


def test_save_onto_own_mmap_source_is_safe(tmp_path):
    """Overwriting the snapshot an mmap-loaded artifact came from must
    not fault the live mappings (writes go to a temp file + rename)."""
    graph = generators.random_connected_graph(24, extra_edges=30, seed=3)
    scheme = SketchConnectivityScheme(graph, seed=1)
    pairs, per = _queries(graph, 20, 3, seed=51)
    cold = scheme.query_many(pairs, per)
    path = tmp_path / "self.snap"
    save_snapshot(path, scheme)
    loaded = load_snapshot(path)  # mmap-backed
    save_snapshot(path, loaded)  # overwrite the backing file in place
    assert loaded.query_many(pairs, per) == cold  # old mapping still live
    assert load_snapshot(path).query_many(pairs, per) == cold
    assert not list(tmp_path.glob("*.tmp.*"))  # no temp litter


def test_snapshot_info_reports_shape(tmp_path):
    path = _write_small_snapshot(tmp_path)
    info = snapshot_info(path)
    assert info["kind"] == "sketch"
    assert info["segments"] >= 4
    assert 0 < info["payload_bytes"] <= info["file_bytes"]
