"""Unit tests for rooted spanning trees and forests."""

import math

import pytest
from hypothesis import given, settings

from repro.graph import generators
from repro.graph.spanning_tree import RootedTree, spanning_forest
from repro.oracles.distances import shortest_path_distance
from tests.conftest import connected_graphs


class TestBuilders:
    def test_bfs_tree_spans_component(self, small_connected):
        tree = RootedTree.bfs(small_connected, root=0)
        assert sorted(tree.vertices) == list(range(small_connected.n))
        assert len(tree.tree_edge_indices) == small_connected.n - 1

    def test_bfs_depth_is_hop_distance(self, grid_6x6):
        tree = RootedTree.bfs(grid_6x6, root=0)
        for v in grid_6x6.vertices():
            r, c = divmod(v, 6)
            assert tree.depth[v] == r + c  # grid BFS layers

    def test_dfs_tree_spans_component(self, small_connected):
        tree = RootedTree.dfs(small_connected, root=3)
        assert sorted(tree.vertices) == list(range(small_connected.n))

    def test_dijkstra_tree_gives_shortest_distances(self, weighted_graph):
        tree = RootedTree.dijkstra(weighted_graph, root=0)
        for v in weighted_graph.vertices():
            assert tree.wdepth[v] == pytest.approx(
                shortest_path_distance(weighted_graph, 0, v)
            )

    def test_forbidden_edges_respected(self):
        g = generators.cycle_graph(6)
        tree = RootedTree.bfs(g, root=0, forbidden=[0])
        assert 0 not in tree.tree_edge_indices
        assert sorted(tree.vertices) == list(range(6))

    def test_partial_component(self):
        g = generators.cycle_graph(6)
        # Remove two edges: component of 0 shrinks.
        tree = RootedTree.bfs(g, root=0, forbidden=[1, 4])
        assert set(tree.vertices) < set(range(6))
        assert tree.spans(0)


class TestStructure:
    def test_children_are_sorted(self, medium_connected):
        tree = RootedTree.bfs(medium_connected, root=0)
        for v in tree.vertices:
            assert tree.children[v] == sorted(tree.children[v])

    def test_parent_edge_consistency(self, medium_connected):
        g = medium_connected
        tree = RootedTree.bfs(g, root=0)
        for v in tree.vertices:
            if v == tree.root:
                continue
            e = g.edge(tree.parent_edge[v])
            assert {e.u, e.v} == {v, tree.parent[v]}

    def test_child_endpoint(self, medium_connected):
        tree = RootedTree.bfs(medium_connected, root=0)
        for v in tree.vertices:
            if v == tree.root:
                continue
            assert tree.child_endpoint(tree.parent_edge[v]) == v

    def test_child_endpoint_rejects_non_tree_edge(self, medium_connected):
        g = medium_connected
        tree = RootedTree.bfs(g, root=0)
        non_tree = [e.index for e in g.edges if e.index not in tree.tree_edge_indices]
        if non_tree:
            with pytest.raises(ValueError):
                tree.child_endpoint(non_tree[0])

    def test_post_order_children_before_parents(self, medium_connected):
        tree = RootedTree.bfs(medium_connected, root=0)
        position = {v: i for i, v in enumerate(tree.post_order())}
        for v in tree.vertices:
            for c in tree.children[v]:
                assert position[c] < position[v]


class TestPaths:
    @settings(max_examples=30, deadline=None)
    @given(connected_graphs(max_n=16))
    def test_tree_path_endpoints_and_adjacency(self, g):
        tree = RootedTree.bfs(g, root=0)
        for u in range(0, g.n, 3):
            for v in range(0, g.n, 5):
                path = tree.tree_path(u, v)
                assert path[0] == u and path[-1] == v
                for a, b in zip(path, path[1:]):
                    assert tree.parent[a] == b or tree.parent[b] == a

    def test_lca_of_vertex_with_itself(self, small_connected):
        tree = RootedTree.bfs(small_connected, root=0)
        assert tree.lca(5, 5) == 5

    def test_lca_with_root(self, small_connected):
        tree = RootedTree.bfs(small_connected, root=0)
        assert tree.lca(0, 7) == 0

    def test_tree_distance_matches_path_weights(self, weighted_graph):
        tree = RootedTree.dijkstra(weighted_graph, root=0)
        for u, v in [(1, 2), (3, 9), (0, 11)]:
            path = tree.tree_path(u, v)
            total = 0.0
            for a, b in zip(path, path[1:]):
                total += weighted_graph.weight(weighted_graph.edge_index_between(a, b))
            assert tree.tree_distance(u, v) == pytest.approx(total)

    def test_subtree_vertices(self, small_connected):
        tree = RootedTree.bfs(small_connected, root=0)
        assert sorted(tree.subtree_vertices(tree.root)) == sorted(tree.vertices)
        for v in tree.vertices:
            sub = tree.subtree_vertices(v)
            assert v in sub
            for c in tree.children[v]:
                assert c in sub


class TestForest:
    def test_forest_on_disconnected_graph(self):
        g = generators.grid_graph(2, 2)
        # Add isolated component.
        from repro.graph.graph import Graph

        h = Graph(8)
        for e in g.edges:
            h.add_edge(e.u, e.v)
        h.add_edge(4, 5)
        h.add_edge(6, 7)
        trees, comp_of = spanning_forest(h)
        assert len(trees) == 3
        assert comp_of[0] == comp_of[3]
        assert comp_of[4] == comp_of[5] != comp_of[6]

    def test_forest_with_forbidden_edges(self):
        g = generators.cycle_graph(8)
        trees, comp_of = spanning_forest(g, forbidden=[0, 4])
        assert len(trees) == 2


class TestEngineEquivalence:
    """The vectorized RootedTree constructor matches the sequential walk."""

    CASES = [
        ("random", lambda: generators.random_connected_graph(300, extra_edges=420, seed=71)),
        ("grid", lambda: generators.grid_graph(17, 17)),
        ("ring_of_cliques", lambda: generators.ring_of_cliques(40, 6)),
        (
            "weighted",
            lambda: generators.with_random_weights(
                generators.random_connected_graph(256, extra_edges=380, seed=72),
                1,
                9,
                seed=73,
            ),
        ),
        # High-diameter adversary: takes the hybrid's sequential branch.
        ("path", lambda: generators.grid_graph(1, 300)),
        # Small tree: below the vectorization cutoff.
        ("small", lambda: generators.random_connected_graph(24, extra_edges=30, seed=74)),
    ]

    @pytest.mark.parametrize("name,make", CASES, ids=[c[0] for c in CASES])
    def test_attributes_identical(self, name, make):
        import numpy as np

        g = make()
        fast = RootedTree.bfs(g, 0)
        ref = RootedTree.bfs(g, 0, engine="reference")
        assert fast.vertices == ref.vertices
        assert fast.children == ref.children
        assert fast.depth == ref.depth
        assert fast.wdepth == ref.wdepth
        assert fast.in_tree == ref.in_tree
        assert fast.tree_edge_indices == ref.tree_edge_indices
        fa, ra = fast.arrays(), ref.arrays()
        for field in ("parent", "parent_edge", "depth", "order", "size"):
            assert np.array_equal(getattr(fa, field), getattr(ra, field)), field

    def test_dfs_parents_through_both_engines(self):
        g = generators.random_connected_graph(250, extra_edges=300, seed=75)
        base = RootedTree.dfs(g, 0)
        ref = RootedTree(g, 0, base.parent, base.parent_edge, engine="reference")
        assert base.vertices == ref.vertices
        assert base.children == ref.children

    def test_forest_engines_agree(self):
        g = generators.ring_of_cliques(50, 6)
        fast_trees, fast_comp = spanning_forest(g)
        ref_trees, ref_comp = spanning_forest(g, engine="reference")
        assert list(fast_comp) == list(ref_comp)
        for a, b in zip(fast_trees, ref_trees):
            assert a.vertices == b.vertices
            assert a.depth == b.depth
