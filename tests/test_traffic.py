"""Traffic subsystem tests: workload generators, churn correctness.

The load-bearing property: interleaved fail/repair timelines from
``repro.traffic`` must never change delivered-path correctness — every
delivered message carries a valid fault-avoiding walk and its
endpoints really are connected in ``G \\ F``; every undelivered one is
really disconnected (checked against the exact connectivity oracle for
the fixed seeds).  Plus: the packed and seed engines produce identical
reports for whole simulations.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.graph import generators
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.traffic import (
    TrafficSimulator,
    churn_timeline,
    fault_set_pool,
    hotspot_pairs,
    uniform_pairs,
)
from repro.traffic.simulator import validate_results

FAMILIES = [
    ("random", lambda: generators.random_connected_graph(36, extra_edges=54, seed=41)),
    ("grid", lambda: generators.grid_graph(6, 6)),
    ("path", lambda: generators.grid_graph(1, 32)),
    ("ring", lambda: generators.torus_graph(3, 10)),
]


class TestWorkloadGenerators:
    def test_uniform_pairs_shape_and_determinism(self):
        a = uniform_pairs(50, 200, random.Random(1))
        b = uniform_pairs(50, 200, random.Random(1))
        assert a == b and len(a) == 200
        assert all(0 <= s < 50 and 0 <= t < 50 and s != t for s, t in a)

    def test_hotspot_pairs_concentrate_destinations(self):
        pairs = hotspot_pairs(100, 500, random.Random(2), hotspots=3, bias=0.9)
        assert all(s != t for s, t in pairs)
        counts: dict[int, int] = {}
        for _, t in pairs:
            counts[t] = counts.get(t, 0) + 1
        top3 = sum(sorted(counts.values(), reverse=True)[:3])
        assert top3 >= 0.7 * len(pairs)

    def test_fault_set_pool_sorted_unique(self):
        pool = fault_set_pool(40, 6, 3, random.Random(3))
        assert len(pool) == 6
        for F in pool:
            assert F == sorted(set(F)) and len(F) == 3

    def test_churn_respects_budget_and_replays_events(self):
        rng = random.Random(4)
        epochs = churn_timeline(30, 60, epochs=40, budget=2, rng=rng,
                                messages_per_epoch=4)
        live: set[int] = set()
        for epoch in epochs:
            for op, ei in epoch.events:
                if op == "fail":
                    assert ei not in live
                    live.add(ei)
                else:
                    assert ei in live
                    live.discard(ei)
            assert set(epoch.faults) == live
            assert len(live) <= 2

    def test_churn_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            churn_timeline(10, 20, epochs=2, budget=-1, rng=random.Random(0))


class TestChurnCorrectness:
    @pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_interleaved_fail_repair_never_breaks_delivery(self, name, make):
        """The property test of the satellite: any fail/repair
        interleaving, delivered-path correctness vs the oracle."""
        graph = make()
        router = FaultTolerantRouter(graph, f=2, k=2, seed=43)
        rng = random.Random(44)
        epochs = churn_timeline(
            graph.n, graph.m, epochs=14, budget=2, rng=rng,
            messages_per_epoch=10,
        )
        # validate=True raises RouteValidationError on any violation.
        report = TrafficSimulator(router, validate=True).run(epochs)
        assert report.messages == sum(len(e.pairs) for e in epochs)

    def test_repair_restores_delivery(self):
        """A message blocked by a cut must deliver again after repair —
        fault independence of the preprocessing."""
        from repro.graph.graph import Graph

        g = Graph(5)
        for v in range(4):
            g.add_edge(v, v + 1)
        g.add_edge(0, 3)
        router = FaultTolerantRouter(g, f=1, k=2, seed=45)
        cut = g.edge_index_between(3, 4)
        blocked = router.route_many([(0, 4)], [cut])[0]
        assert not blocked.delivered
        repaired = router.route_many([(0, 4)], [])[0]
        assert repaired.delivered

    def test_validate_results_flags_bad_walks(self):
        graph = generators.grid_graph(3, 3)
        router = FaultTolerantRouter(graph, f=1, k=2, seed=46)
        res = router.route_many([(0, 8)], [])
        # sanity: the genuine result validates...
        validate_results(graph, [(0, 8)], [], res)
        # ...and a truncated trace does not.
        import dataclasses

        broken = dataclasses.replace(res[0], trace=res[0].trace[:-1])
        with pytest.raises(AssertionError):
            validate_results(graph, [(0, 8)], [], [broken])


class TestSimulatorEquivalence:
    def test_packed_and_seed_reports_identical(self):
        graph = generators.random_connected_graph(30, extra_edges=44, seed=47)
        router = FaultTolerantRouter(graph, f=2, k=2, seed=48)
        rng = random.Random(49)
        epochs = churn_timeline(
            graph.n, graph.m, epochs=8, budget=2, rng=rng,
            messages_per_epoch=8,
        )
        packed = TrafficSimulator(router, engine="packed").run(epochs)
        seed = TrafficSimulator(router, engine="reference").run(epochs)
        for field in (
            "epoch", "s", "t", "delivered", "length", "hops", "weighted",
            "reversals", "reversal_hops", "gamma_queries", "decode_calls",
            "phases", "iterations",
        ):
            assert np.array_equal(getattr(packed, field), getattr(seed, field)), field
        assert packed.summary() == seed.summary()

    def test_report_summary_and_slices(self):
        graph = generators.grid_graph(4, 4)
        router = FaultTolerantRouter(graph, f=1, k=2, seed=50)
        rng = random.Random(51)
        epochs = churn_timeline(
            graph.n, graph.m, epochs=5, budget=1, rng=rng,
            messages_per_epoch=6,
        )
        report = TrafficSimulator(router).run(epochs)
        summary = report.summary()
        assert summary["messages"] == 30
        assert summary["epochs"] == 5
        assert 0.0 <= summary["delivery_rate"] <= 1.0
        assert summary["reversal_hops"] <= summary["total_hops"]
        assert report.epoch_slice(2).size == 6

    def test_empty_run_summary_has_full_key_set(self):
        graph = generators.grid_graph(3, 3)
        router = FaultTolerantRouter(graph, f=1, k=2, seed=53)
        report = TrafficSimulator(router).run([])
        summary = report.summary()
        assert summary["messages"] == 0
        # the printer relies on every key existing even for empty runs
        nonempty = TrafficSimulator(router).run(
            churn_timeline(graph.n, graph.m, epochs=1, budget=1,
                           rng=random.Random(54), messages_per_epoch=2)
        ).summary()
        assert set(summary) == set(nonempty)

    def test_scenario_health_summary_reports_routing(self):
        from repro.scenarios import FaultScenario

        graph = generators.grid_graph(4, 4)
        scenario = FaultScenario(graph, f=1, k=2, seed=52)
        scenario.fail(5, 6)
        scenario.route_many([(4, 7), (0, 15)])
        health = scenario.health_summary([0, 5, 10, 15])
        routing = health["routing"]
        assert routing["messages"] == 2
        assert routing["delivered"] == 2
        assert routing["reversal_hops"] <= routing["hops"]
        assert 0.0 <= routing["reversal_hop_share"] <= 1.0
