"""Tests for tree covers (Definition 4.1 / Proposition 4.2)."""

import math

import pytest

from repro.graph import generators
from repro.graph.components import connected_components
from repro.oracles import DistanceOracle
from repro.trees.tree_cover import sparse_cover


def _check_cover_properties(graph, cover, rho, k, forbidden=()):
    oracle = DistanceOracle(graph)
    member_sets = [set(t.vertices) for t in cover.trees]
    # Property 1: each vertex's ball is inside its home cluster.
    for v in graph.vertices():
        home = cover.home[v]
        ball = set(oracle.ball(v, rho, faults=forbidden))
        assert ball <= member_sets[home], f"ball of {v} not covered"
    # Property 2: cluster radii are O(k * rho).
    for t in cover.trees:
        assert t.radius <= (2 * k + 1) * rho + 1e-9
    # Clusters induce connected subgraphs (so SPT trees exist).
    for t in cover.trees:
        sub = graph.induced_subgraph(
            t.vertices,
            allowed_edges=[
                e.index for e in graph.edges if e.index not in set(forbidden)
            ],
        )
        _, count = connected_components(sub.graph)
        assert count == 1


class TestCoverProperties:
    def test_grid_small_radius(self):
        g = generators.grid_graph(7, 7)
        cover = sparse_cover(g, rho=2.0, k=2)
        _check_cover_properties(g, cover, 2.0, 2)
        assert len(cover.trees) > 1  # small balls: several clusters

    def test_grid_large_radius_single_cluster(self):
        g = generators.grid_graph(5, 5)
        cover = sparse_cover(g, rho=100.0, k=2)
        assert len(cover.trees) == 1
        assert len(cover.trees[0].vertices) == 25

    def test_random_graph_various_scales(self):
        g = generators.random_connected_graph(50, extra_edges=60, seed=3)
        for rho in (1.0, 2.0, 4.0):
            for k in (1, 2, 3):
                cover = sparse_cover(g, rho=rho, k=k)
                _check_cover_properties(g, cover, rho, k)

    def test_weighted_graph(self):
        base = generators.grid_graph(5, 5)
        g = generators.with_random_weights(base, 1, 4, seed=5)
        cover = sparse_cover(g, rho=3.0, k=2)
        _check_cover_properties(g, cover, 3.0, 2)

    def test_forbidden_edges_respected(self):
        g = generators.grid_graph(4, 4)
        heavy = [0, 5, 10]
        cover = sparse_cover(g, rho=2.0, k=2, forbidden_edges=heavy)
        _check_cover_properties(g, cover, 2.0, 2, forbidden=heavy)

    def test_disconnected_graph(self):
        from repro.graph.graph import Graph

        g = Graph(6)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        cover = sparse_cover(g, rho=1.0, k=2)
        # Homes are defined for every vertex; clusters never span components.
        assert set(cover.home) == set(range(6))
        for t in cover.trees:
            assert not ({0, 1, 2} & set(t.vertices) and {3, 4, 5} & set(t.vertices))


class TestOverlap:
    def test_overlap_is_moderate(self):
        """Property 3: per-vertex overlap ~ O(k n^{1/k} log n) in practice."""
        g = generators.grid_graph(8, 8)
        for k in (2, 3):
            cover = sparse_cover(g, rho=2.0, k=k)
            bound = 4 * k * (g.n ** (1.0 / k)) * math.log2(g.n)
            assert cover.max_overlap() <= bound

    def test_overlap_counts_consistent(self):
        g = generators.grid_graph(6, 6)
        cover = sparse_cover(g, rho=1.0, k=2)
        counts = cover.overlap_counts()
        assert sum(counts.values()) == sum(len(t.vertices) for t in cover.trees)

    def test_growth_override_controls_cluster_count(self):
        """A large growth bound stops kernel merging early (many small
        clusters); a tiny bound merges everything into one."""
        g = generators.grid_graph(6, 6)
        eager = sparse_cover(g, rho=2.0, k=2, max_cluster_growth=1e9)
        lazy = sparse_cover(g, rho=2.0, k=2, max_cluster_growth=1.01)
        assert len(eager.trees) > len(lazy.trees)
        assert len(lazy.trees) == 1


class TestValidation:
    def test_rejects_bad_parameters(self):
        g = generators.cycle_graph(5)
        with pytest.raises(ValueError):
            sparse_cover(g, rho=0.0, k=2)
        with pytest.raises(ValueError):
            sparse_cover(g, rho=1.0, k=0)

    def test_centers_are_members(self):
        g = generators.grid_graph(5, 5)
        cover = sparse_cover(g, rho=1.0, k=2)
        for t in cover.trees:
            assert t.center in set(t.vertices)
