"""Tests for Thorup-Zwick tree routing (Fact 5.1) and the Γ variant
(Claim 5.6)."""

import pytest

from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.spanning_tree import RootedTree
from repro.trees.tree_routing import TreeRoutingScheme


def _route(scheme, tables, labels, s, t, max_hops=1000):
    """Drive next_hop from s to t; returns the vertex path."""
    tree = scheme.tree
    current = s
    path = [s]
    for _ in range(max_hops):
        hop = TreeRoutingScheme.next_hop(tables[current], labels[t])
        if hop is None:
            return path
        port, _ = hop
        nxt, _ = tree.graph.via_port(current, port)
        current = nxt
        path.append(current)
    raise AssertionError("routing did not converge")


@pytest.fixture(params=[0, 1, 2])
def routed_tree(request):
    g = generators.random_connected_graph(30, extra_edges=35, seed=request.param)
    tree = RootedTree.bfs(g, root=0)
    scheme = TreeRoutingScheme(tree)
    tables = {v: scheme.table(v) for v in tree.vertices}
    labels = {v: scheme.label(v) for v in tree.vertices}
    return g, tree, scheme, tables, labels


class TestBasicRouting:
    def test_all_pairs_reach_target_along_tree_path(self, routed_tree):
        g, tree, scheme, tables, labels = routed_tree
        for s in range(0, g.n, 4):
            for t in range(0, g.n, 3):
                path = _route(scheme, tables, labels, s, t)
                assert path == tree.tree_path(s, t)

    def test_route_to_self(self, routed_tree):
        _, _, scheme, tables, labels = routed_tree
        assert _route(scheme, tables, labels, 7, 7) == [7]

    def test_label_entries_are_light_edges_only(self, routed_tree):
        g, tree, scheme, tables, labels = routed_tree
        from repro.trees.heavy_light import HeavyLightDecomposition

        hld = HeavyLightDecomposition(tree)
        for v in tree.vertices:
            assert len(labels[v].entries) == hld.light_depth[v]


class TestGammaVariant:
    def _star_tree(self, leaves=12):
        g = Graph(leaves + 2)
        for v in range(1, leaves + 1):
            g.add_edge(0, v)
        g.add_edge(1, leaves + 1)  # make vertex 1 internal
        return RootedTree.bfs(g, root=0)

    def test_blocks_have_bounded_size(self):
        tree = self._star_tree(13)
        f = 2
        scheme = TreeRoutingScheme(tree, gamma_f=f)
        for child in tree.children[0]:
            members = scheme.gamma_members(child)
            assert child in members
            assert f + 1 <= len(members) <= 2 * f + 1

    def test_small_degree_gamma_is_all_children(self):
        g = generators.random_tree(10, seed=3)
        tree = RootedTree.bfs(g, root=0)
        scheme = TreeRoutingScheme(tree, gamma_f=5)
        for u in tree.vertices:
            if 0 < len(tree.children[u]) <= 6:
                assert scheme.stores_child_labels(u)
                for c in tree.children[u]:
                    assert set(scheme.gamma_members(c)) == set(tree.children[u])

    def test_every_child_is_in_its_own_block(self):
        tree = self._star_tree(20)
        scheme = TreeRoutingScheme(tree, gamma_f=3)
        for child in tree.children[0]:
            assert child in scheme.gamma_members(child)

    def test_blocks_partition_children(self):
        tree = self._star_tree(17)
        scheme = TreeRoutingScheme(tree, gamma_f=3)
        seen = []
        blocks = {scheme.gamma_members(c) for c in tree.children[0]}
        for block in blocks:
            seen.extend(block)
        assert sorted(seen) == sorted(tree.children[0])

    def test_gamma_ports_returned_by_next_hop(self):
        tree = self._star_tree(12)
        scheme = TreeRoutingScheme(tree, gamma_f=2)
        tables = {v: scheme.table(v) for v in tree.vertices}
        labels = {v: scheme.label(v) for v in tree.vertices}
        # Route from root towards a light leaf: gamma ports must come back.
        for leaf in tree.children[0][1:]:
            port, gports = TreeRoutingScheme.next_hop(tables[0], labels[leaf])
            assert tree.graph.via_port(0, port)[0] == leaf
            members = scheme.gamma_members(leaf)
            assert len(gports) == len(members)
            for gp, w in zip(gports, members):
                assert tree.graph.via_port(0, gp)[0] == w

    def test_routing_still_correct_with_gamma(self):
        g = generators.random_connected_graph(25, extra_edges=30, seed=7)
        tree = RootedTree.bfs(g, root=0)
        scheme = TreeRoutingScheme(tree, gamma_f=2)
        tables = {v: scheme.table(v) for v in tree.vertices}
        labels = {v: scheme.label(v) for v in tree.vertices}
        for s in range(0, g.n, 3):
            for t in range(0, g.n, 5):
                assert _route(scheme, tables, labels, s, t) == tree.tree_path(s, t)


class TestEncoding:
    def test_encode_decode_roundtrip(self, routed_tree):
        _, tree, scheme, _, labels = routed_tree
        for v in tree.vertices:
            enc = scheme.encode_label(labels[v])
            assert enc < (1 << scheme.encoded_label_bits())
            dec = scheme.decode_label(enc)
            assert dec == labels[v]

    def test_encode_decode_with_gamma(self):
        g = generators.random_connected_graph(25, extra_edges=30, seed=8)
        tree = RootedTree.bfs(g, root=0)
        scheme = TreeRoutingScheme(tree, gamma_f=2)
        for v in tree.vertices:
            lab = scheme.label(v)
            assert scheme.decode_label(scheme.encode_label(lab)) == lab

    def test_global_id_hooks(self):
        g = generators.grid_graph(3, 3)
        sub = g.induced_subgraph([0, 1, 2, 4, 5])
        to_parent = sub.vertex_to_parent
        tree = RootedTree.bfs(sub.graph, root=0)
        scheme = TreeRoutingScheme(
            tree,
            id_of=lambda lv: to_parent[lv],
            port_fn=lambda lu, lv: g.port_of(to_parent[lu], to_parent[lv]),
            id_space=g.n,
        )
        for lv in range(sub.graph.n):
            lab = scheme.label(lv)
            assert lab.vid == to_parent[lv]  # global ids
            for entry in lab.entries:
                # Port is valid in the *global* graph.
                nxt, _ = g.via_port(entry.parent_id, entry.port)
                assert nxt in to_parent


class TestSizes:
    def test_label_bits_scale_with_light_depth(self, routed_tree):
        _, tree, scheme, _, _ = routed_tree
        from repro.trees.heavy_light import HeavyLightDecomposition

        hld = HeavyLightDecomposition(tree)
        shallow = min(tree.vertices, key=lambda v: hld.light_depth[v])
        deep = max(tree.vertices, key=lambda v: hld.light_depth[v])
        if hld.light_depth[deep] > hld.light_depth[shallow]:
            assert scheme.label_bits(deep) > scheme.label_bits(shallow)

    def test_table_bits_positive(self, routed_tree):
        _, tree, scheme, _, _ = routed_tree
        for v in tree.vertices:
            assert scheme.table_bits(v) > 0


class TestPackedNextHopMany:
    """The batched (ragged-searchsorted) next-hop engine vs the scalar
    table/label computation, and the snapshot array protocol."""

    @pytest.mark.parametrize("gamma_f", [None, 2])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_next_hop_many_matches_scalar_all_pairs(self, seed, gamma_f):
        import numpy as np

        g = generators.random_connected_graph(40, extra_edges=50, seed=seed)
        tree = RootedTree.bfs(g, root=0)
        scheme = TreeRoutingScheme(tree, gamma_f=gamma_f)
        packed = scheme.packed()
        tables = {v: scheme.table(v) for v in tree.vertices}
        labels = {v: scheme.label(v) for v in tree.vertices}
        pairs = [(u, t) for u in tree.vertices for t in tree.vertices]
        lu = np.array([p[0] for p in pairs], dtype=np.int64)
        lt = np.array([p[1] for p in pairs], dtype=np.int64)
        action, port, nxt = packed.next_hop_many(lu, lt)
        for i, (u, t) in enumerate(pairs):
            hop = TreeRoutingScheme.next_hop(tables[u], labels[t])
            if hop is None:
                assert action[i] == 0
                continue
            assert action[i] > 0
            assert port[i] == hop[0]
            assert g.via_port(u, int(port[i]))[0] == int(nxt[i])

    def test_next_hop_many_star_exercises_wide_light_rows(self):
        """A star root has n-1 light children — the ragged searchsorted
        must pick the exact child for every target."""
        import numpy as np

        g = Graph(33)
        for v in range(1, 33):
            g.add_edge(0, v)
        tree = RootedTree.bfs(g, root=0)
        scheme = TreeRoutingScheme(tree)
        packed = scheme.packed()
        targets = np.arange(1, 33, dtype=np.int64)
        lu = np.zeros(32, dtype=np.int64)
        action, port, nxt = packed.next_hop_many(lu, targets)
        # the heavy child takes action 2; every other hop is light (3)
        assert (nxt == targets).all()
        assert sorted(port.tolist()) == list(range(32))
        assert set(action.tolist()) <= {2, 3}

    def test_packed_arrays_round_trip(self):
        """__arrays__ / from_arrays rebuild an equivalent packed view."""
        import numpy as np

        from repro.trees.tree_routing import PackedTreeRouting

        g = generators.random_connected_graph(36, extra_edges=44, seed=3)
        tree = RootedTree.bfs(g, root=0)
        scheme = TreeRoutingScheme(tree, gamma_f=2)
        packed = scheme.packed()
        arrays = packed.__arrays__()
        assert set(arrays) == set(PackedTreeRouting._ARRAY_FIELDS)
        clone = PackedTreeRouting.from_arrays(arrays)
        lu = np.array([v for v in tree.vertices for _ in (0, 1)], dtype=np.int64)
        lt = np.array(
            [t for _ in tree.vertices for t in (tree.vertices[0], tree.vertices[-1])],
            dtype=np.int64,
        )
        a1 = packed.next_hop_many(lu, lt)
        a2 = clone.next_hop_many(lu, lt)
        for x, y in zip(a1, a2):
            assert (x == y).all()
        for child in range(g.n):
            assert packed.gamma_row(child) == clone.gamma_row(child)
