"""Tests for union-find and heavy-light decomposition."""

import math

from repro.graph import generators
from repro.graph.spanning_tree import RootedTree
from repro.trees.heavy_light import HeavyLightDecomposition
from repro.trees.union_find import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.set_count == 5
        assert not uf.same(0, 1)

    def test_union_merges(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.same(0, 1)
        assert uf.set_count == 4

    def test_union_idempotent(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.set_count == 4

    def test_transitive_chain(self):
        uf = UnionFind(10)
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.set_count == 1
        assert uf.same(0, 9)

    def test_find_is_canonical(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 3)
        roots = {uf.find(i) for i in (0, 1, 2, 3)}
        assert len(roots) == 1


class TestHeavyLight:
    def test_subtree_sizes(self, medium_connected):
        tree = RootedTree.bfs(medium_connected, root=0)
        hld = HeavyLightDecomposition(tree)
        assert hld.size[tree.root] == len(tree.vertices)
        for v in tree.vertices:
            assert hld.size[v] == 1 + sum(hld.size[c] for c in tree.children[v])

    def test_heavy_child_is_largest(self, medium_connected):
        tree = RootedTree.bfs(medium_connected, root=0)
        hld = HeavyLightDecomposition(tree)
        for v in tree.vertices:
            if tree.children[v]:
                h = hld.heavy_child[v]
                assert hld.size[h] == max(hld.size[c] for c in tree.children[v])
            else:
                assert hld.heavy_child[v] == -1

    def test_light_depth_bounded_by_log(self):
        for seed in range(5):
            g = generators.random_connected_graph(100, extra_edges=60, seed=seed)
            tree = RootedTree.bfs(g, root=0)
            hld = HeavyLightDecomposition(tree)
            bound = math.floor(math.log2(100)) + 1
            assert hld.max_light_depth() <= bound

    def test_light_edges_to_matches_light_depth(self, medium_connected):
        tree = RootedTree.bfs(medium_connected, root=0)
        hld = HeavyLightDecomposition(tree)
        for v in tree.vertices:
            assert len(hld.light_edges_to(v)) == hld.light_depth[v]

    def test_light_edges_are_on_root_path(self, medium_connected):
        tree = RootedTree.bfs(medium_connected, root=0)
        hld = HeavyLightDecomposition(tree)
        for v in tree.vertices:
            path = set(tree.path_to_root(v))
            for parent, child in hld.light_edges_to(v):
                assert parent in path and child in path
                assert tree.parent[child] == parent
                assert not hld.is_heavy_edge_to(child)

    def test_path_structure_on_star(self):
        from repro.graph.graph import Graph

        g = Graph(6)
        for v in range(1, 6):
            g.add_edge(0, v)
        tree = RootedTree.bfs(g, root=0)
        hld = HeavyLightDecomposition(tree)
        # All children same size; heavy is the smallest id.
        assert hld.heavy_child[0] == 1
        assert hld.light_depth[1] == 0
        assert all(hld.light_depth[v] == 1 for v in range(2, 6))
