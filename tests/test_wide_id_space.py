"""Wide identifier spaces: family auto-selection end to end.

The m61 tentpole retired the 46341-id ceiling, but the contract has two
sides: (a) every workload that fit before must keep producing
*bit-identical* labels on the legacy m31 family (snapshots from older
releases decode unchanged), and (b) instances past the cap — which the
seed code rejected with a ValueError — must now build, answer
oracle-validated ``query_many``, and route.  These tests pin both
sides, plus the layout half of the tentpole: the ragged change-point
prefix store answers exactly like the dense tensor it replaces.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.sketch_scheme import SketchConnectivityScheme
from repro.graph import generators
from repro.oracles import ConnectivityOracle
from repro.routing.fault_tolerant import FaultTolerantRouter
from repro.sketches.sketch import MAX_SKETCH_ID_SPACE


def _queries(graph, count, max_faults, seed):
    rnd = random.Random(seed)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(count)]
    per = [
        rnd.sample(range(graph.m), rnd.randint(0, min(max_faults, graph.m)))
        for _ in range(count)
    ]
    return pairs, per


def test_default_id_space_stays_bit_identical_m31():
    """``id_space=None`` and explicit ``id_space=n`` are the same scheme.

    Auto-selection must be invisible for small instances: same m31
    family, same packed EID words, same dense prefix tensors, same
    answers — byte for byte, or old snapshots would stop decoding.
    """
    graph = generators.random_connected_graph(60, extra_edges=90, seed=41)
    default = SketchConnectivityScheme(graph, seed=5)
    explicit = SketchConnectivityScheme(graph, seed=5, id_space=graph.n)
    assert default.hash_family == "m31"
    assert explicit.hash_family == "m31"
    assert default.prefix_layout == "dense"
    np.testing.assert_array_equal(default._eid_words, explicit._eid_words)
    for a, b in zip(default._prefix, explicit._prefix):
        np.testing.assert_array_equal(a, b)
    pairs, per = _queries(graph, 40, 4, seed=42)
    assert default.query_many(pairs, per) == explicit.query_many(pairs, per)


def test_forced_wide_id_space_answers_match_oracle():
    """A small graph forced onto m61 still answers exactly."""
    graph = generators.random_connected_graph(80, extra_edges=120, seed=43)
    scheme = SketchConnectivityScheme(graph, seed=7, id_space=50_000)
    assert scheme.hash_family == "m61"
    assert scheme.prefix_layout == "ragged"
    pairs, per = _queries(graph, 60, 5, seed=44)
    oracle = ConnectivityOracle(graph)
    res = scheme.query_many(pairs, per, want_path=False)
    for r, (s, t), faults in zip(res, pairs, per):
        assert r.connected == oracle.connected(s, t, faults)


def test_instance_past_m31_cap_builds_and_matches_oracle():
    """n past 46341 — the seed's hard ValueError — now just works.

    The whole point of the tentpole: this graph has more vertices than
    the m31 modulus admits edge keys for, so the scheme must land on
    m61 + ragged storage and still answer oracle-exact.
    """
    n = MAX_SKETCH_ID_SPACE + 1  # 46342: first size the seed rejected
    graph = generators.random_connected_graph(n, extra_edges=20_000, seed=3)
    scheme = SketchConnectivityScheme(graph, seed=9)
    assert scheme.hash_family == "m61"
    assert scheme.prefix_layout == "ragged"
    pairs, per = _queries(graph, 12, 4, seed=45)
    oracle = ConnectivityOracle(graph)
    res = scheme.query_many(pairs, per, want_path=False)
    for r, (s, t), faults in zip(res, pairs, per):
        assert r.connected == oracle.connected(s, t, faults)


@pytest.mark.parametrize("id_space", [None, 50_000])
def test_ragged_and_dense_prefix_layouts_answer_identically(id_space):
    """Layout is storage, not semantics: both stores give one answer set."""
    graph = generators.with_random_weights(
        generators.random_connected_graph(72, extra_edges=110, seed=46),
        1,
        7,
        seed=47,
    )
    dense = SketchConnectivityScheme(
        graph, seed=11, id_space=id_space, prefix_layout="dense"
    )
    ragged = SketchConnectivityScheme(
        graph, seed=11, id_space=id_space, prefix_layout="ragged"
    )
    assert dense.prefix_layout == "dense"
    assert ragged.prefix_layout == "ragged"
    pairs, per = _queries(graph, 50, 5, seed=48)
    assert dense.query_many(pairs, per) == ragged.query_many(pairs, per)


def test_route_many_with_wide_id_space():
    """Routing rides the same labels: forced m61 routes deliver and the
    packed stepper agrees with the reference engine trace for trace."""
    graph = generators.random_connected_graph(48, extra_edges=70, seed=49)
    router = FaultTolerantRouter(graph, f=2, k=2, seed=13, id_space=50_000)
    rnd = random.Random(50)
    pairs = [tuple(rnd.sample(range(graph.n), 2)) for _ in range(24)]
    per = [rnd.sample(range(graph.m), rnd.randint(0, 2)) for _ in pairs]
    packed = router.route_many(pairs, per, engine="packed")
    reference = router.route_many(pairs, per, engine="reference")
    oracle = ConnectivityOracle(graph)
    for (s, t), faults, a, b in zip(pairs, per, packed, reference):
        assert (a.delivered, a.trace) == (b.delivered, b.trace)
        if oracle.connected(s, t, faults):
            assert a.delivered
